#include "src/sssp/solver.hpp"

#include <algorithm>
#include <utility>

#include "src/baselines/delta_stepping_2d.hpp"
#include "src/baselines/delta_stepping_dist.hpp"
#include "src/baselines/sequential.hpp"
#include "src/core/acic.hpp"
#include "src/graph/partition.hpp"
#include "src/graph/partition2d.hpp"
#include "src/util/assert.hpp"

namespace acic::sssp {

double RunTelemetry::extra(const std::string& key, double fallback) const {
  for (const auto& [k, v] : extras) {
    if (k == key) return v;
  }
  return fallback;
}

namespace {

double imbalance(const std::vector<runtime::SimTime>& busy) {
  if (busy.empty()) return 0.0;
  double total = 0.0;
  double peak = 0.0;
  for (const double b : busy) {
    total += b;
    peak = std::max(peak, b);
  }
  const double mean = total / static_cast<double>(busy.size());
  return mean > 0.0 ? peak / mean : 0.0;
}

/// Propagates the run's registry into a tram config that does not
/// already name one.
tram::TramConfig with_registry(tram::TramConfig config,
                               obs::Registry* registry) {
  if (config.registry == nullptr) config.registry = registry;
  return config;
}

SolverRun run_acic(runtime::Machine& machine, const graph::Csr& csr,
                   graph::VertexId source, const SolverOptions& opts) {
  const auto partition =
      opts.acic_balanced_partition
          ? graph::Partition1D::balanced_edges(csr, machine.num_pes())
          : graph::Partition1D::block(csr.num_vertices(),
                                      machine.num_pes());
  core::AcicConfig config = opts.acic;
  if (config.registry == nullptr) config.registry = opts.registry;
  if (config.frontier_feed == nullptr) {
    config.frontier_feed = opts.storage.frontier_feed;
  }
  auto run = core::acic_sssp(machine, csr, partition, source, config,
                             opts.time_limit_us);
  SolverRun out;
  out.sssp = std::move(run.sssp);
  out.telemetry.hit_time_limit = run.hit_time_limit;
  out.telemetry.cycles = run.reduction_cycles;
  out.telemetry.pe_busy_us = std::move(run.pe_busy_us);
  out.telemetry.extras = {
      {"sent_directly", static_cast<double>(run.lifecycle.sent_directly)},
      {"held_in_tram", static_cast<double>(run.lifecycle.held_in_tram)},
      {"held_in_pq_hold",
       static_cast<double>(run.lifecycle.held_in_pq_hold)},
      {"superseded_in_pq",
       static_cast<double>(run.lifecycle.superseded_in_pq)},
      {"expanded", static_cast<double>(run.lifecycle.expanded)},
  };
  return out;
}

SolverRun run_delta(runtime::Machine& machine, const graph::Csr& csr,
                    graph::VertexId source, const SolverOptions& opts,
                    bool two_d) {
  baselines::DeltaConfig config = opts.delta;
  config.tram = with_registry(config.tram, opts.registry);
  if (config.frontier_feed == nullptr) {
    config.frontier_feed = opts.storage.frontier_feed;
  }
  baselines::DeltaRunResult run;
  if (two_d) {
    const auto partition = graph::Partition2D::squarest(csr,
                                                        machine.num_pes());
    run = baselines::delta_stepping_2d(machine, csr, partition, source,
                                       config, opts.time_limit_us);
  } else {
    const auto partition =
        graph::Partition1D::block(csr.num_vertices(), machine.num_pes());
    run = baselines::delta_stepping_dist(machine, csr, partition, source,
                                         config, opts.time_limit_us);
  }
  SolverRun out;
  out.sssp = std::move(run.sssp);
  out.telemetry.hit_time_limit = run.hit_time_limit;
  out.telemetry.cycles = run.barrier_rounds;
  out.telemetry.pe_busy_us = std::move(run.pe_busy_us);
  out.telemetry.extras = {
      {"buckets_processed", static_cast<double>(run.buckets_processed)},
      {"light_phases", static_cast<double>(run.light_phases)},
      {"heavy_phases", static_cast<double>(run.heavy_phases)},
      {"bf_sweeps", static_cast<double>(run.bf_sweeps)},
      {"switched_to_bf", run.switched_to_bf ? 1.0 : 0.0},
  };
  return out;
}

SolverRun run_kla(runtime::Machine& machine, const graph::Csr& csr,
                  graph::VertexId source, const SolverOptions& opts) {
  const auto partition =
      graph::Partition1D::block(csr.num_vertices(), machine.num_pes());
  baselines::KlaConfig config = opts.kla;
  config.tram = with_registry(config.tram, opts.registry);
  auto run = baselines::kla_sssp(machine, csr, partition, source, config,
                                 opts.time_limit_us);
  SolverRun out;
  out.sssp = std::move(run.sssp);
  out.telemetry.hit_time_limit = run.hit_time_limit;
  out.telemetry.cycles = run.supersteps;
  out.telemetry.pe_busy_us = std::move(run.pe_busy_us);
  out.telemetry.extras = {
      {"final_k", static_cast<double>(run.final_k)},
      {"peak_k", static_cast<double>(run.peak_k)},
  };
  return out;
}

SolverRun run_dc(runtime::Machine& machine, const graph::Csr& csr,
                 graph::VertexId source, const SolverOptions& opts,
                 bool use_priority) {
  const auto partition =
      graph::Partition1D::block(csr.num_vertices(), machine.num_pes());
  baselines::DistributedControlConfig config = opts.dc;
  config.use_priority = use_priority;
  config.tram = with_registry(config.tram, opts.registry);
  auto run = baselines::distributed_control_sssp(
      machine, csr, partition, source, config, opts.time_limit_us);
  SolverRun out;
  out.sssp = std::move(run.sssp);
  out.telemetry.hit_time_limit = run.hit_time_limit;
  out.telemetry.cycles = run.detector_cycles;
  out.telemetry.pe_busy_us = std::move(run.pe_busy_us);
  return out;
}

SolverRun run_sequential(runtime::Machine& /*machine*/,
                         const graph::Csr& csr, graph::VertexId source,
                         const SolverOptions& opts) {
  baselines::SeqStats stats;
  SolverRun out;
  if (opts.sequential_method == "dijkstra") {
    out.sssp.dist = baselines::dijkstra(csr, source, &stats);
  } else if (opts.sequential_method == "bellman_ford") {
    out.sssp.dist = baselines::bellman_ford(csr, source, &stats);
  } else if (opts.sequential_method == "delta_stepping") {
    out.sssp.dist = baselines::delta_stepping_seq(
        csr, source, opts.sequential_delta, &stats);
  } else {
    ACIC_ASSERT_MSG(false,
                    "unknown sequential_method (expected dijkstra, "
                    "bellman_ford or delta_stepping)");
  }
  out.sssp.metrics.updates_created = stats.relaxations;
  out.sssp.metrics.updates_processed = stats.relaxations;
  out.sssp.metrics.updates_rejected =
      stats.relaxations - stats.improvements;
  out.telemetry.cycles = stats.phases;
  out.telemetry.extras = {
      {"relaxations", static_cast<double>(stats.relaxations)},
      {"improvements", static_cast<double>(stats.improvements)},
  };
  return out;
}

struct RegistryEntry {
  std::string name;
  SolverFn fn;
};

std::vector<RegistryEntry>& solver_registry() {
  static std::vector<RegistryEntry> entries = [] {
    std::vector<RegistryEntry> built_ins;
    auto add = [&built_ins](const char* name, SolverFn fn) {
      built_ins.push_back(RegistryEntry{name, std::move(fn)});
    };
    add("acic", run_acic);
    add("delta_stepping_dist",
        [](runtime::Machine& m, const graph::Csr& g, graph::VertexId s,
           const SolverOptions& o) {
          return run_delta(m, g, s, o, /*two_d=*/false);
        });
    add("delta_stepping_2d",
        [](runtime::Machine& m, const graph::Csr& g, graph::VertexId s,
           const SolverOptions& o) {
          return run_delta(m, g, s, o, /*two_d=*/true);
        });
    add("kla", run_kla);
    add("distributed_control",
        [](runtime::Machine& m, const graph::Csr& g, graph::VertexId s,
           const SolverOptions& o) {
          return run_dc(m, g, s, o, /*use_priority=*/true);
        });
    add("async_baseline",
        [](runtime::Machine& m, const graph::Csr& g, graph::VertexId s,
           const SolverOptions& o) {
          return run_dc(m, g, s, o, /*use_priority=*/false);
        });
    add("sequential", run_sequential);
    return built_ins;
  }();
  return entries;
}

}  // namespace

std::vector<std::string> solver_names() {
  std::vector<std::string> names;
  names.reserve(solver_registry().size());
  for (const RegistryEntry& entry : solver_registry()) {
    names.push_back(entry.name);
  }
  return names;
}

bool has_solver(const std::string& name) {
  for (const RegistryEntry& entry : solver_registry()) {
    if (entry.name == name) return true;
  }
  return false;
}

void register_solver(const std::string& name, SolverFn fn) {
  ACIC_ASSERT_MSG(fn != nullptr, "solver function must be callable");
  for (RegistryEntry& entry : solver_registry()) {
    if (entry.name == name) {
      entry.fn = std::move(fn);
      return;
    }
  }
  solver_registry().push_back(RegistryEntry{name, std::move(fn)});
}

SolverRun run_solver(const std::string& name, runtime::Machine& machine,
                     const graph::Csr& csr, graph::VertexId source,
                     const SolverOptions& opts) {
  ACIC_ASSERT(source < csr.num_vertices());
  if (opts.reorder != graph::ReorderMode::kIdentity) {
    // Relabel once, recurse with the permuted graph and mapped source,
    // then hand back distances in the caller's original labels.
    const graph::Remap remap(csr, opts.reorder, opts.reorder_threads);
    SolverOptions inner = opts;
    inner.reorder = graph::ReorderMode::kIdentity;
    SolverRun run = run_solver(name, machine, remap.csr(),
                               remap.map_vertex(source), inner);
    run.sssp.dist = remap.unmap_distances(run.sssp.dist);
    return run;
  }
  for (const RegistryEntry& entry : solver_registry()) {
    if (entry.name != name) continue;
    if (opts.registry != nullptr) machine.set_registry(opts.registry);
    const runtime::EngineMode previous_mode = machine.engine_mode();
    machine.set_engine_mode(opts.engine_mode);
    SolverRun run = entry.fn(machine, csr, source, opts);
    machine.set_engine_mode(previous_mode);
    run.telemetry.solver = name;
    run.telemetry.busy_imbalance = imbalance(run.telemetry.pe_busy_us);
    return run;
  }
  ACIC_ASSERT_MSG(false, "unknown solver name (see sssp::solver_names)");
  return {};
}

}  // namespace acic::sssp
