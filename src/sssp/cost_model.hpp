#pragma once
// Per-operation CPU costs shared by every distributed SSSP implementation
// in this repository.  ACIC and the baselines charge the *same* costs for
// the same logical operations, so simulated-time comparisons between them
// reflect algorithmic structure (update counts, synchronization, message
// aggregation) rather than arbitrary constant choices.

#include "src/runtime/network.hpp"

namespace acic::sssp {

struct CostModel {
  /// Compare an incoming update against the vertex distance and store it.
  runtime::SimTime update_apply_us = 0.3;
  /// Generate one onward update from an out-edge (read edge, add weight).
  runtime::SimTime edge_relax_us = 0.15;
  /// One push or pop on a PE-local priority queue / bucket structure.
  runtime::SimTime pq_op_us = 0.08;
};

}  // namespace acic::sssp
