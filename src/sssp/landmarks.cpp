#include "src/sssp/landmarks.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "src/baselines/sequential.hpp"
#include "src/graph/edge_list.hpp"
#include "src/util/assert.hpp"

namespace acic::sssp {

using graph::Csr;
using graph::Dist;
using graph::VertexId;

graph::Csr LandmarkIndex::build_reverse(const Csr& forward) {
  const VertexId n = forward.num_vertices();
  graph::EdgeList reversed(n, {});
  reversed.reserve(forward.num_edges());
  for (VertexId v = 0; v < n; ++v) {
    for (const graph::Neighbor& nb : forward.out_neighbors(v)) {
      reversed.add(nb.dst, v, nb.weight);
    }
  }
  return Csr::from_edge_list(reversed);
}

LandmarkIndex::LandmarkIndex(const Csr& forward, const Csr& reverse,
                             LandmarkConfig config)
    : config_(config), num_vertices_(forward.num_vertices()) {
  ACIC_ASSERT_MSG(reverse.num_vertices() == num_vertices_,
                  "forward/reverse vertex counts must match");
  landmark_of_.assign(num_vertices_, -1);
  if (num_vertices_ == 0 || config_.num_landmarks == 0) return;

  // Farthest-point selection.  The first landmark is the highest-degree
  // vertex (lowest id on ties) — a hub whose rows cover the most
  // shortest paths; each next landmark maximizes its distance from the
  // already-chosen set, measured on the forward rows built so far, so
  // selection reuses exactly the tables the index keeps anyway.
  VertexId first = 0;
  for (VertexId v = 1; v < num_vertices_; ++v) {
    if (forward.out_degree(v) > forward.out_degree(first)) first = v;
  }

  const std::size_t want =
      std::min<std::size_t>(config_.num_landmarks, num_vertices_);
  std::vector<Dist> score(num_vertices_, graph::kInfDist);
  VertexId next = first;
  while (landmarks_.size() < want) {
    landmark_of_[next] = static_cast<std::int32_t>(landmarks_.size());
    landmarks_.push_back(next);
    from_.push_back(baselines::dijkstra(forward, next));
    const std::vector<Dist>& row = from_.back();
    VertexId best = graph::kInvalidVertex;
    Dist best_score = 0.0;
    for (VertexId v = 0; v < num_vertices_; ++v) {
      if (landmark_of_[v] >= 0) continue;
      score[v] = std::min(score[v], row[v]);
      // Unreachable candidates (other components) are skipped: an
      // all-infinity row bounds nothing.
      if (score[v] == graph::kInfDist) continue;
      if (best == graph::kInvalidVertex || score[v] > best_score) {
        best = v;
        best_score = score[v];
      }
    }
    if (best == graph::kInvalidVertex || best_score <= 0.0) break;
    next = best;
  }

  to_.reserve(landmarks_.size());
  for (const VertexId lm : landmarks_) {
    to_.push_back(baselines::dijkstra(reverse, lm));
  }
  from_valid_.assign(landmarks_.size(), 1);
  to_valid_.assign(landmarks_.size(), 1);
}

bool LandmarkIndex::exact_p2p(VertexId s, VertexId t, Dist* out) const {
  if (s == t) {
    *out = 0.0;
    return true;
  }
  // Source-landmark hit: the forward row *is* the answer, bitwise — it
  // was produced by the same forward solve a dedicated engine run would
  // do.  The symmetric target-landmark case must NOT serve its finite
  // reverse-row value: a reverse-graph solve sums the same path in the
  // opposite order, so the value can differ from the forward answer by
  // ulps, and the serving contract is bitwise equality with a full
  // forward run.  Reverse rows still prove *unreachability* exactly
  // (infinity carries no rounding), which the check below uses.
  const std::int32_t ks = landmark_of_[s];
  if (ks >= 0 && from_valid_[static_cast<std::size_t>(ks)]) {
    *out = from_[static_cast<std::size_t>(ks)][t];
    return true;
  }
  const std::int32_t kt = landmark_of_[t];
  if (kt >= 0 && to_valid_[static_cast<std::size_t>(kt)] &&
      to_[static_cast<std::size_t>(kt)][s] == graph::kInfDist) {
    *out = graph::kInfDist;
    return true;
  }
  // Structural unreachability: if L reaches s but not t, no s→t path
  // exists (it would extend L→s); if t reaches L but s does not, no
  // s→t path exists (it would extend to s→t→L).  Pure comparisons
  // against infinity — no arithmetic, hence exact.
  for (std::size_t k = 0; k < landmarks_.size(); ++k) {
    if (from_valid_[k] && from_[k][s] != graph::kInfDist &&
        from_[k][t] == graph::kInfDist) {
      *out = graph::kInfDist;
      return true;
    }
    if (to_valid_[k] && to_[k][t] != graph::kInfDist &&
        to_[k][s] == graph::kInfDist) {
      *out = graph::kInfDist;
      return true;
    }
  }
  return false;
}

LandmarkBounds LandmarkIndex::bounds(VertexId s, VertexId t) const {
  Dist exact = 0.0;
  if (exact_p2p(s, t, &exact)) return LandmarkBounds{exact, exact};

  LandmarkBounds b;
  b.lower = 0.0;
  b.upper = graph::kInfDist;
  const double slack = config_.slack;
  for (std::size_t k = 0; k < landmarks_.size(); ++k) {
    if (from_valid_[k]) {
      const Dist a_t = from_[k][t];
      const Dist a_s = from_[k][s];
      if (a_t != graph::kInfDist && a_s != graph::kInfDist) {
        const Dist cand = (a_t - a_s) - slack * (a_t + a_s);
        if (cand > b.lower) b.lower = cand;
      }
    }
    if (to_valid_[k]) {
      const Dist c_s = to_[k][s];
      const Dist c_t = to_[k][t];
      if (c_s != graph::kInfDist && c_t != graph::kInfDist) {
        const Dist cand = (c_s - c_t) - slack * (c_s + c_t);
        if (cand > b.lower) b.lower = cand;
      }
    }
    if (from_valid_[k] && to_valid_[k]) {
      const Dist up = to_[k][s];
      const Dist down = from_[k][t];
      if (up != graph::kInfDist && down != graph::kInfDist) {
        const Dist cand = (up + down) * (1.0 + slack);
        if (cand < b.upper) b.upper = cand;
      }
    }
  }
  return b;
}

Dist LandmarkIndex::heuristic(VertexId v, VertexId t) const {
  Dist h = 0.0;
  const double slack = config_.slack;
  for (std::size_t k = 0; k < landmarks_.size(); ++k) {
    if (from_valid_[k]) {
      const Dist a_t = from_[k][t];
      const Dist a_v = from_[k][v];
      if (a_v != graph::kInfDist) {
        // L reaches v but not t: d(v, t) is provably infinite, so the
        // heuristic may be too — A* then never pops v before
        // termination.
        if (a_t == graph::kInfDist) return graph::kInfDist;
        const Dist cand = (a_t - a_v) - slack * (a_t + a_v);
        if (cand > h) h = cand;
      }
    }
    if (to_valid_[k]) {
      const Dist c_v = to_[k][v];
      const Dist c_t = to_[k][t];
      if (c_t != graph::kInfDist) {
        if (c_v == graph::kInfDist) return graph::kInfDist;
        const Dist cand = (c_v - c_t) - slack * (c_v + c_t);
        if (cand > h) h = cand;
      }
    }
  }
  return h;
}

namespace {

/// A* frontier entry; min-ordered on (f, vertex) for a deterministic
/// expansion schedule (the result value is the unique fixed point
/// either way).
struct AstarEntry {
  Dist f = 0.0;
  Dist g = 0.0;
  VertexId vertex = 0;
};
struct AstarGreater {
  bool operator()(const AstarEntry& a, const AstarEntry& b) const {
    if (a.f != b.f) return a.f > b.f;
    return a.vertex > b.vertex;
  }
};

}  // namespace

Dist LandmarkIndex::p2p(const Csr& forward, VertexId s, VertexId t,
                        P2pWorkspace* ws, P2pStats* stats) const {
  ACIC_ASSERT(s < num_vertices_ && t < num_vertices_);
  Dist exact = 0.0;
  if (exact_p2p(s, t, &exact)) {
    if (stats != nullptr) stats->exact_tier = true;
    return exact;
  }

  // Version-stamped g-values: a slot is live only when its stamp
  // matches the current version, so resets are O(1).
  ws->g.resize(num_vertices_);
  ws->stamp.resize(num_vertices_, 0);
  if (++ws->version == 0) {
    std::fill(ws->stamp.begin(), ws->stamp.end(), 0);
    ws->version = 1;
  }
  const std::uint32_t version = ws->version;
  auto g_of = [&](VertexId v) {
    return ws->stamp[v] == version ? ws->g[v] : graph::kInfDist;
  };
  auto set_g = [&](VertexId v, Dist d) {
    ws->g[v] = d;
    ws->stamp[v] = version;
  };

  std::priority_queue<AstarEntry, std::vector<AstarEntry>, AstarGreater>
      open;
  set_g(s, 0.0);
  open.push(AstarEntry{heuristic(s, t), 0.0, s});

  while (!open.empty()) {
    const AstarEntry e = open.top();
    open.pop();
    const Dist best = g_of(t);
    // Any path still undiscovered leaves through some open vertex v
    // with key f(v) >= e.f, and (admissible heuristic) costs at least
    // f(v) — so once the popped key reaches the settled target
    // distance, that distance is final.  Re-expansion below keeps this
    // argument valid even though the slack-deflated heuristic is not
    // necessarily consistent.
    if (best != graph::kInfDist && e.f >= best) break;
    if (e.g != g_of(e.vertex)) continue;  // superseded entry
    if (e.vertex == t) continue;  // cycles out of t never improve it
    if (stats != nullptr) ++stats->settled;
    for (const graph::Neighbor& nb : forward.out_neighbors(e.vertex)) {
      if (stats != nullptr) ++stats->relaxed;
      const Dist nd = e.g + nb.weight;
      if (nd < g_of(nb.dst)) {
        set_g(nb.dst, nd);
        const Dist h = heuristic(nb.dst, t);
        if (h != graph::kInfDist) {
          open.push(AstarEntry{nd + h, nd, nb.dst});
        }
      }
    }
  }
  return g_of(t);
}

std::size_t LandmarkIndex::invalidate(
    std::span<const dynamic::EdgeDelta> deltas) {
  std::size_t newly = 0;
  for (std::size_t k = 0; k < landmarks_.size(); ++k) {
    if (from_valid_[k]) {
      // Forward rows: the cache's per-edge staleness test verbatim — a
      // removal/increase matters only where the edge was a tight
      // witness, an insert/decrease only where it strictly improves
      // the head.
      const std::vector<Dist>& row = from_[k];
      for (const dynamic::EdgeDelta& d : deltas) {
        const Dist du = row[d.src];
        if (du == graph::kInfDist) continue;
        if ((d.is_removal_or_increase() &&
             du + d.weight_before == row[d.dst]) ||
            (d.is_insert_or_decrease() &&
             du + d.weight_after < row[d.dst])) {
          from_valid_[k] = 0;
          ++newly;
          break;
        }
      }
    }
    if (to_valid_[k]) {
      // Reverse rows measure d(x, L): forward edge (u, v) appears on
      // those paths as v-then-u in the reverse graph the row was
      // computed on, so the same test runs with the roles swapped.
      const std::vector<Dist>& row = to_[k];
      for (const dynamic::EdgeDelta& d : deltas) {
        const Dist dv = row[d.dst];
        if (dv == graph::kInfDist) continue;
        if ((d.is_removal_or_increase() &&
             dv + d.weight_before == row[d.src]) ||
            (d.is_insert_or_decrease() &&
             dv + d.weight_after < row[d.src])) {
          to_valid_[k] = 0;
          ++newly;
          break;
        }
      }
    }
  }
  return newly;
}

std::size_t LandmarkIndex::refresh(const Csr& forward,
                                   const Csr& reverse) {
  ACIC_ASSERT(forward.num_vertices() == num_vertices_ &&
              reverse.num_vertices() == num_vertices_);
  std::size_t recomputed = 0;
  for (std::size_t k = 0; k < landmarks_.size(); ++k) {
    if (!from_valid_[k]) {
      from_[k] = baselines::dijkstra(forward, landmarks_[k]);
      from_valid_[k] = 1;
      ++recomputed;
    }
    if (!to_valid_[k]) {
      to_[k] = baselines::dijkstra(reverse, landmarks_[k]);
      to_valid_[k] = 1;
      ++recomputed;
    }
  }
  return recomputed;
}

std::size_t LandmarkIndex::invalid_rows() const {
  std::size_t n = 0;
  for (const std::uint8_t v : from_valid_) n += (v == 0);
  for (const std::uint8_t v : to_valid_) n += (v == 0);
  return n;
}

double LandmarkIndex::invalid_fraction() const {
  const std::size_t rows = num_rows();
  if (rows == 0) return 0.0;
  return static_cast<double>(invalid_rows()) /
         static_cast<double>(rows);
}

}  // namespace acic::sssp
