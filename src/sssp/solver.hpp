#pragma once
// Uniform solver front-end: one string-keyed registry covering every
// SSSP implementation in the repository.
//
// Before this layer each algorithm exposed its own free function with
// its own config/result structs, and every harness (examples, bench,
// the stats layer, the query server) re-implemented the dispatch,
// partition construction and metric flattening.  `run_solver` folds all
// of that behind one call:
//
//   sssp::SolverOptions opts;
//   opts.registry = &reg;                      // optional observability
//   auto run = sssp::run_solver("acic", machine, csr, source, opts);
//   // run.sssp.dist, run.telemetry.cycles, run.telemetry.extra("...")
//
// Built-in names: "acic", "delta_stepping_dist", "delta_stepping_2d",
// "kla", "distributed_control", "async_baseline", "sequential".  The
// original free functions (core::acic_sssp, baselines::*) remain the
// precise, fully-typed entry points; the registry adapters call them,
// so both paths produce identical distances — a property the
// solver-registry tests pin down.  New algorithms can self-register
// with register_solver().
//
// Every adapter builds its partition internally (equal-vertex block by
// default; balanced-edge or 2-D where the algorithm calls for it) and
// flattens algorithm-specific detail into RunTelemetry::extras, so
// callers that only compare solvers never touch per-algorithm types.

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/baselines/delta_common.hpp"
#include "src/baselines/distributed_control.hpp"
#include "src/baselines/kla.hpp"
#include "src/core/config.hpp"
#include "src/graph/csr.hpp"
#include "src/graph/ooc_prefetch.hpp"
#include "src/graph/reorder.hpp"
#include "src/runtime/machine.hpp"
#include "src/sssp/result.hpp"

namespace acic::sssp {

/// Parameters for every registered solver; defaults reproduce the
/// paper's tuned configuration.  Solvers read only their own section.
struct SolverOptions {
  core::AcicConfig acic;
  /// Balanced-edge 1-D partition for ACIC instead of the paper's
  /// equal-vertex block partition.
  bool acic_balanced_partition = false;
  baselines::DeltaConfig delta;
  baselines::KlaConfig kla;
  baselines::DistributedControlConfig dc;

  /// Method for the "sequential" solver: "dijkstra", "bellman_ford" or
  /// "delta_stepping".
  std::string sequential_method = "dijkstra";
  /// Bucket width for sequential delta-stepping (0 = heuristic).
  double sequential_delta = 0.0;

  /// Vertex reordering (src/graph/reorder.hpp): when not kIdentity,
  /// run_solver relabels the graph, maps the source in, runs the solver
  /// on the permuted CSR and inverse-permutes the distances back, so
  /// callers see original-label results.  Distances are exactly equal to
  /// the identity run's; simulated schedule/counters legitimately differ
  /// (the relabeling changes which updates cross node boundaries).
  graph::ReorderMode reorder = graph::ReorderMode::kIdentity;
  /// Host threads for building the permuted CSR (output is identical at
  /// any value).
  unsigned reorder_threads = 1;

  runtime::SimTime time_limit_us = runtime::kNoTimeLimit;

  /// Engine schedule for the run (src/runtime/machine.hpp EngineMode):
  /// kOptimistic lets parallel shards speculate past their conservative
  /// window limit with checkpoint/rollback.  Committed results are
  /// bit-identical to conservative mode; only host-side diagnostics
  /// (RunStats::speculation_*) differ.  run_solver applies the mode to
  /// the machine for the duration of the run and restores the previous
  /// mode afterwards.  Solvers whose state cannot be snapshotted
  /// (delta_stepping_2d) register an unsupported hook and run
  /// conservatively regardless.  Ignored by "sequential" (no machine).
  runtime::EngineMode engine_mode = runtime::EngineMode::kConservative;

  /// Optional observability registry (src/obs/registry.hpp): attached
  /// to the machine and propagated into the solver's tram/engine
  /// configs, so one run emits runtime, tram and algorithm streams
  /// without per-solver wiring.  Must outlive the run.
  obs::Registry* registry = nullptr;

  /// Storage wiring for out-of-core graphs.  The CSR handed to
  /// run_solver may already be a MappedCsr view — solvers cannot tell —
  /// so the only knob here is the prefetcher feed: when set it is
  /// propagated into the engine configs (unless they already name one)
  /// and the ACIC pq/hold and Δ-stepping bucket code publishes upcoming
  /// vertex ids into it.  Purely a host-side readahead channel; results
  /// are bit-identical with or without it.  Must outlive the run.
  struct StorageOptions {
    graph::ooc::FrontierFeed* frontier_feed = nullptr;
  };
  StorageOptions storage;
};

/// Uniform run metadata: what every solver can report about its own
/// execution, independent of the machine-level RunStats already folded
/// into SsspMetrics.
struct RunTelemetry {
  /// Registry name the run was dispatched under.
  std::string solver;
  bool hit_time_limit = false;
  /// The solver's progress-cycle count: reduction cycles (acic),
  /// barrier rounds (delta), supersteps (kla), detector cycles (dc),
  /// phases (sequential).
  std::uint64_t cycles = 0;
  /// Per-worker busy time (empty for sequential).
  std::vector<runtime::SimTime> pe_busy_us;
  /// Peak / mean of pe_busy_us (0 when unavailable).
  double busy_imbalance = 0.0;
  /// Algorithm-specific detail, flattened to (key, value) pairs in a
  /// stable order (e.g. "switched_to_bf", "peak_k", "held_in_tram").
  std::vector<std::pair<std::string, double>> extras;

  /// Looks up an extra by key; `fallback` if absent.
  double extra(const std::string& key, double fallback = 0.0) const;
};

struct SolverRun {
  SsspResult sssp;
  RunTelemetry telemetry;
};

/// A registered solver: runs one SSSP query on `machine` and returns
/// distances + telemetry.  Must leave the machine reusable.
using SolverFn = std::function<SolverRun(
    runtime::Machine&, const graph::Csr&, graph::VertexId,
    const SolverOptions&)>;

/// Registered names, in registration order (built-ins first).
std::vector<std::string> solver_names();
bool has_solver(const std::string& name);

/// Registers (or replaces) a solver under `name`.
void register_solver(const std::string& name, SolverFn fn);

/// Dispatches to the solver registered under `name`.  Asserts on
/// unknown names (solver_names() enumerates the valid set).  When
/// opts.registry is set it is attached to the machine for the duration
/// of the run and left attached, so callers can export afterwards.
SolverRun run_solver(const std::string& name, runtime::Machine& machine,
                     const graph::Csr& csr, graph::VertexId source,
                     const SolverOptions& opts = {});

}  // namespace acic::sssp
