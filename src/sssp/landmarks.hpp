#pragma once
// Landmark (ALT) distance tier for point-to-point queries.
//
// A LandmarkIndex precomputes, for a small set of landmarks L chosen by
// farthest-point selection, two full distance rows per landmark over the
// sequential reference solver:
//
//   from[L][v] = d(L, v)   (Dijkstra on the forward graph)
//   to[L][v]   = d(v, L)   (Dijkstra on the reverse graph)
//
// and serves source→target queries in three tiers:
//
//   1. *Airtight exact*: s == t, structural unreachability proofs
//      (s reaches L but t does not, or t is reached from L but s is
//      not), and landmark hits (s or t is itself a landmark with a
//      valid row).  These involve no floating-point arithmetic beyond
//      reading a table slot, so the answer is bitwise equal to a full
//      solve.
//   2. *Goal-directed A\**: triangle-inequality lower bounds give an
//      admissible heuristic h(v) ≈ max_L (from[L][t] − from[L][v],
//      to[L][v] − to[L][t]).  Floating-point path sums only satisfy the
//      triangle inequality up to accumulated rounding, so the raw bound
//      is deflated by a conservative slack (kHeuristicSlack, orders of
//      magnitude above any reachable rounding error) — the deflated
//      heuristic is strictly admissible in the floating-point metric,
//      and A* with re-expansion that terminates only once the popped
//      key reaches the settled target distance returns *exactly* the
//      left-to-right floating-point path minimum that Dijkstra and the
//      ACIC engine compute.  bench/server_load verifies this equality
//      at the 10^5-query scale and exits nonzero on any divergence.
//   3. *Fallback*: with no valid landmark rows the heuristic degrades
//      to 0 and tier 2 is plain early-exit Dijkstra — still exact.
//
// Dynamic graphs: rows are invalidated with the same per-edge staleness
// tests the result cache uses (a removal/increase matters only to rows
// where the edge was a tight shortest-path witness; an insert/decrease
// only where it strictly improves the head — see row_stale).  Surviving
// rows are provably still exact for the new epoch; invalidated rows are
// either lazily ignored (the heuristic just weakens) or refreshed
// against the current graph by refresh().
//
// Ground: "A Heuristic Algorithm for Shortest Path Search" (PAPERS.md)
// and Goldberg & Harrelson's ALT family.

#include <cstdint>
#include <span>
#include <vector>

#include "src/dynamic/mutation.hpp"
#include "src/graph/csr.hpp"
#include "src/graph/types.hpp"

namespace acic::sssp {

struct LandmarkConfig {
  /// Landmarks to select (clamped to the number of usable vertices).
  std::size_t num_landmarks = 8;
  /// Relative slack deflating every lower bound / heuristic value (and
  /// inflating upper bounds).  Must exceed the worst accumulated
  /// floating-point rounding of any path sum; 1e-7 is ~6 orders of
  /// magnitude above the error reachable at 2^20-hop paths.
  double slack = 1e-7;
};

/// Conservative two-sided bound on d(s, t): lower <= d(s, t) <= upper
/// in the floating-point metric (slack-padded; see LandmarkConfig).
struct LandmarkBounds {
  graph::Dist lower = 0.0;
  graph::Dist upper = graph::kInfDist;
};

/// Per-query accounting for the p2p tiers.
struct P2pStats {
  std::uint64_t settled = 0;   // A* pops that expanded
  std::uint64_t relaxed = 0;   // edges relaxed by A*
  bool exact_tier = false;     // answered from tier 1 (no search)
};

/// Reusable A* scratch: version-stamped g-values, so consecutive
/// queries pay O(touched) instead of O(|V|) to reset.  One workspace
/// per serving thread; the index itself is immutable during queries.
struct P2pWorkspace {
  std::vector<graph::Dist> g;
  std::vector<std::uint32_t> stamp;
  std::uint32_t version = 0;
};

class LandmarkIndex {
 public:
  /// Builds the index over `forward` and its reverse adjacency
  /// (row v = in-edges as Neighbor{src, weight} — exactly the layout
  /// dynamic::GraphSnapshot::reverse carries).  Selection and both
  /// tables cost 2k Dijkstras; fully deterministic.
  LandmarkIndex(const graph::Csr& forward, const graph::Csr& reverse,
                LandmarkConfig config = {});

  /// Builds the reverse adjacency for static callers that do not have a
  /// GraphSnapshot at hand.
  static graph::Csr build_reverse(const graph::Csr& forward);

  const std::vector<graph::VertexId>& landmarks() const {
    return landmarks_;
  }

  /// Tier 1: returns true and writes the exact distance when (s, t) is
  /// provably answerable without search (see file comment).  Only valid
  /// rows participate, so the answer is exact for the epoch the valid
  /// rows describe.
  bool exact_p2p(graph::VertexId s, graph::VertexId t,
                 graph::Dist* out) const;

  /// Slack-padded two-sided bound from every valid row (tier-1 proofs
  /// folded in: an unreachability proof yields {inf, inf}, s == t
  /// yields {0, 0}).
  LandmarkBounds bounds(graph::VertexId s, graph::VertexId t) const;

  /// Exact d(s, t): tier 1 if it fires, else goal-directed A* over
  /// `forward` (which must be the graph the valid rows describe).
  /// Returns graph::kInfDist for unreachable targets.
  graph::Dist p2p(const graph::Csr& forward, graph::VertexId s,
                  graph::VertexId t, P2pWorkspace* ws,
                  P2pStats* stats = nullptr) const;

  /// Dynamic mode: marks every row on which some delta was a tight
  /// witness (removal/increase) or a strict improvement
  /// (insert/decrease) invalid.  Returns rows newly invalidated.
  std::size_t invalidate(std::span<const dynamic::EdgeDelta> deltas);

  /// Recomputes every invalid row against the given (current) graph
  /// pair; after this all rows are valid for that epoch.  Returns rows
  /// recomputed.
  std::size_t refresh(const graph::Csr& forward,
                      const graph::Csr& reverse);

  std::size_t num_rows() const { return 2 * landmarks_.size(); }
  std::size_t invalid_rows() const;
  double invalid_fraction() const;

 private:
  graph::Dist heuristic(graph::VertexId v, graph::VertexId t) const;

  LandmarkConfig config_;
  graph::VertexId num_vertices_ = 0;
  std::vector<graph::VertexId> landmarks_;
  /// landmark_of_[v] = index into landmarks_, or -1.
  std::vector<std::int32_t> landmark_of_;
  std::vector<std::vector<graph::Dist>> from_;  // from_[k][v] = d(L_k, v)
  std::vector<std::vector<graph::Dist>> to_;    // to_[k][v]   = d(v, L_k)
  std::vector<std::uint8_t> from_valid_;
  std::vector<std::uint8_t> to_valid_;
};

}  // namespace acic::sssp
