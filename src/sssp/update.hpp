#pragma once
// The unit of work every SSSP algorithm in this repository exchanges: an
// *update* u = (v, d), equivalent to an edge relaxation (paper §II.A).
// An update is "created" when generated from a relaxed edge and
// "processed" when it is either rejected (its distance is no better than
// the vertex's current distance) or expanded (one onward update created
// per out-edge).

#include "src/graph/types.hpp"

namespace acic::sssp {

struct Update {
  graph::VertexId vertex = 0;
  graph::Dist dist = 0.0;

  friend bool operator==(const Update&, const Update&) = default;
};

/// Ordering for min-priority queues: smallest distance first; ties break
/// on vertex id for determinism.
struct UpdateMinOrder {
  bool operator()(const Update& a, const Update& b) const {
    if (a.dist != b.dist) return a.dist > b.dist;  // std::priority_queue max-heap inversion
    return a.vertex > b.vertex;
  }
};

/// Serialized wire size of one update (vertex id + distance).
inline constexpr std::size_t kUpdateWireBytes =
    sizeof(graph::VertexId) + sizeof(graph::Dist);

}  // namespace acic::sssp
