#pragma once
// Result and metrics types returned by every SSSP run.

#include <cstdint>
#include <vector>

#include "src/graph/types.hpp"
#include "src/runtime/network.hpp"

namespace acic::sssp {

struct SsspMetrics {
  /// Total updates (edge relaxations) created across all PEs.
  std::uint64_t updates_created = 0;
  /// Updates fully processed (rejected or expanded).
  std::uint64_t updates_processed = 0;
  /// Updates rejected on arrival (distance no better than current).
  std::uint64_t updates_rejected = 0;
  /// Updates that were accepted but superseded by a better update before
  /// they were expanded (popped stale from a priority queue).
  std::uint64_t updates_superseded = 0;
  /// Vertices whose distance changed at least once.
  std::uint64_t vertices_touched = 0;

  std::uint64_t network_messages = 0;
  std::uint64_t network_bytes = 0;

  /// Synchronizations (bulk-synchronous phases or reduction cycles).
  std::uint64_t collective_cycles = 0;

  runtime::SimTime sim_time_us = 0.0;

  double sim_time_s() const { return sim_time_us * 1e-6; }

  /// Traversed edges per second: relaxation throughput, the paper's
  /// fig. 8 metric (an algorithm that creates fewer wasted updates can be
  /// faster overall even at lower TEPS, and vice versa).
  double teps() const {
    return sim_time_us > 0.0
               ? static_cast<double>(updates_created) / sim_time_s()
               : 0.0;
  }

  /// Wasted work fraction: updates that did not lead to an expansion.
  double wasted_fraction() const {
    return updates_processed > 0
               ? static_cast<double>(updates_rejected + updates_superseded) /
                     static_cast<double>(updates_processed)
               : 0.0;
  }
};

struct SsspResult {
  std::vector<graph::Dist> dist;
  /// Shortest-path-tree parent per vertex (kInvalidVertex for the source
  /// and unreachable vertices): parent[v] is a *witness* in-neighbor u
  /// with dist[u] + w(u, v) == dist[v].  Empty unless the producer
  /// tracks parents — the dynamic layer (src/dynamic/repair.hpp) fills
  /// it, because deletion repair invalidates exactly the subtree hanging
  /// off a removed tree edge.
  std::vector<graph::VertexId> parent;
  SsspMetrics metrics;
};

}  // namespace acic::sssp
