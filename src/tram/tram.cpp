#include "src/tram/tram.hpp"

#include <cctype>
#include <string>

namespace acic::tram {

const char* aggregation_name(Aggregation mode) {
  switch (mode) {
    case Aggregation::kPP:
      return "PP";
    case Aggregation::kWP:
      return "WP";
    case Aggregation::kWW:
      return "WW";
    case Aggregation::kPW:
      return "PW";
  }
  return "??";
}

Aggregation aggregation_from_string(const std::string& name) {
  std::string upper;
  for (char c : name) {
    upper.push_back(
        static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
  if (upper == "PP") return Aggregation::kPP;
  if (upper == "WP") return Aggregation::kWP;
  if (upper == "WW") return Aggregation::kWW;
  if (upper == "PW") return Aggregation::kPW;
  ACIC_ASSERT_MSG(false, "unknown aggregation mode (want PP/WP/WW/PW)");
  return Aggregation::kWP;
}

}  // namespace acic::tram
