#pragma once
// tramlib — the message aggregation library from the paper (§II.D),
// reimplemented over the discrete-event runtime.
//
// SSSP sends an enormous number of tiny update messages; sending each one
// individually pays the per-message overhead every time.  Tramlib holds
// outgoing items in buffers and ships a whole buffer as one message when
// it fills (an *automatic flush*) or when the application asks (a
// *manual flush* — ACIC issues one during the broadcast after every
// reduction so the low-concurrency "tail" of the graph still advances).
//
// Buffer organization uses the paper's two-letter designations: the first
// letter says who owns a buffer *set* (W = one set per worker/PE, P = one
// set per process, written by all its PEs — which costs an atomic-access
// penalty per insert), the second says the destination granularity of the
// buffers inside a set (P = one buffer per destination process, W = one
// per destination PE).  The paper's library offers PP, WP and WW and
// finds WP best for SSSP; we also provide PW for completeness.
//
// Process-destined aggregates are addressed to the destination process's
// communication thread, which fans the items out to their target worker
// PEs over intra-process messages — the Charm++ SMP delivery path.

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <functional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/obs/registry.hpp"
#include "src/runtime/machine.hpp"
#include "src/util/assert.hpp"
#include "src/util/prefetch.hpp"

namespace acic::tram {

/// First letter: buffer-set owner; second: destination granularity.
enum class Aggregation : std::uint8_t { kPP, kWP, kWW, kPW };

const char* aggregation_name(Aggregation mode);

/// Parses "PP" / "WP" / "WW" / "PW" (case-insensitive); asserts otherwise.
Aggregation aggregation_from_string(const std::string& name);

struct TramConfig {
  Aggregation mode = Aggregation::kWP;
  /// Automatic flush threshold, in items (the paper sweeps 512/1024/2048).
  std::size_t buffer_items = 1024;
  /// Serialized size of one item on the wire.
  std::size_t item_bytes = 16;
  /// Sender CPU per inserted item (copy into the buffer).
  runtime::SimTime insert_cost_us = 0.008;
  /// Extra per-insert cost for process-shared sets (atomic operations,
  /// paper §II.D).
  runtime::SimTime atomic_penalty_us = 0.012;
  /// Receiver CPU per delivered item (deserialize + dispatch).
  runtime::SimTime deliver_cost_us = 0.01;
  /// Comm-thread CPU per item when routing a process-destined aggregate.
  runtime::SimTime route_cost_us = 0.004;

  /// Fault injection for tests: every Nth delivered item is delivered a
  /// second time (at-least-once semantics, as after a network-level
  /// retransmission).  Label-correcting algorithms must tolerate this —
  /// duplicate updates are simply rejected.  0 disables.
  std::uint64_t debug_duplicate_every = 0;

  /// Fault injection for tests: reverse the item order of every flushed
  /// buffer (adversarial reordering — high-distance updates arrive
  /// before low-distance ones).  Correctness must be order-independent;
  /// only wasted-work counts may change.
  bool debug_reverse_batches = false;

  /// Optional observability registry.  When set, the tram publishes
  /// "tram/*" counters (inserts, deliveries, aggregate messages, auto
  /// vs manual flushes) and a "tram/flush_occupancy" series recording
  /// buffer fill at every flush.  Families are shared by name, so
  /// several tram instances (e.g. one per concurrent query) merge into
  /// machine-wide totals.  Must outlive the tram.  A registry-attached
  /// tram requires the serial engine (Machine::set_threads(1)): registry
  /// publishing is not sharded per node.
  obs::Registry* registry = nullptr;
};

struct TramStats {
  std::uint64_t items_inserted = 0;
  std::uint64_t items_delivered = 0;
  std::uint64_t aggregate_messages = 0;
  std::uint64_t auto_flushes = 0;
  std::uint64_t manual_flushes = 0;
  std::uint64_t flushed_empty = 0;  // manual flushes that found no items
  std::uint64_t items_duplicated = 0;  // fault-injection duplicates
};

/// Aggregating channel for items of type T.  The delivery handler runs on
/// the destination PE once per item, in buffer order.
///
/// `DeliverFn` defaults to std::function for call-site convenience; hot
/// consumers (ACIC) pass a concrete functor type instead, so the per-item
/// dispatch in deliver_batch inlines rather than going through type
/// erasure — at millions of items per query the indirect call is real
/// money.
template <typename T,
          typename DeliverFn = std::function<void(runtime::Pe&, const T&)>>
class Tram {
 public:
  Tram(runtime::Machine& machine, TramConfig config, DeliverFn deliver)
      : machine_(machine),
        config_(config),
        deliver_(std::move(deliver)),
        topo_(machine.topology()) {
    const std::size_t sets = set_owned_by_pe()
                                 ? topo_.num_pes()
                                 : topo_.num_procs();
    dests_ = dest_is_pe() ? topo_.num_pes() : topo_.num_procs();
    buffers_.assign(sets * dests_, Buffer{});
    // insert() runs once per relaxed edge; precompute everything it
    // would otherwise derive from the topology (integer divisions) or
    // the mode (branches) per call.
    proc_of_.resize(topo_.num_entities());
    node_of_.resize(topo_.num_entities());
    for (runtime::PeId p = 0; p < topo_.num_entities(); ++p) {
      proc_of_[p] = topo_.proc_of(p);
      node_of_[p] = topo_.node_of(p);
    }
    node_.resize(topo_.nodes);
    insert_charge_us_ =
        config_.insert_cost_us +
        (set_owned_by_pe() ? 0.0 : config_.atomic_penalty_us);
    if (config_.registry != nullptr) {
      obs::Registry& reg = *config_.registry;
      obs_items_inserted_ = reg.counter("tram/items_inserted", true);
      obs_items_delivered_ = reg.counter("tram/items_delivered", true);
      obs_aggregate_messages_ =
          reg.counter("tram/aggregate_messages", true);
      obs_auto_flushes_ = reg.counter("tram/auto_flushes");
      obs_manual_flushes_ = reg.counter("tram/manual_flushes");
      obs_flush_occupancy_ = reg.series("tram/flush_occupancy");
    }
  }

  Tram(const Tram&) = delete;
  Tram& operator=(const Tram&) = delete;

  /// Queues `item` for delivery on `dst_pe`; flushes the buffer if full.
  void insert(runtime::Pe& src, runtime::PeId dst_pe, const T& item) {
    ACIC_HOT_ASSERT(dst_pe < topo_.num_pes());
    const std::size_t set = set_index(src.id());
    const std::size_t dest = dest_is_pe() ? dst_pe : proc_of_[dst_pe];
    src.charge(insert_charge_us_);
    Buffer& buffer = buffers_[set * dests_ + dest];
    // First touch of a cold buffer: size it to the flush threshold once;
    // from then on it swaps with pooled, already-sized backing stores.
    if (buffer.items.capacity() == 0) {
      buffer.items.reserve(config_.buffer_items);
    }
    buffer.items.push_back(make_entry(dst_pe, item));
    NodeLocal& nl = node_[node_of_[src.id()]];
    ++nl.stats.items_inserted;
    if (config_.registry != nullptr) [[unlikely]] {
      config_.registry->add(obs_items_inserted_, src.id(), 1, src.now());
    }
    if (buffer.items.size() >= config_.buffer_items) {
      ++nl.stats.auto_flushes;
      if (config_.registry != nullptr) {
        config_.registry->add(obs_auto_flushes_, src.id(), 1, src.now());
      }
      flush_buffer(src, set, dest);
    }
  }

  /// Flushes every non-empty buffer in the set `pe` writes to — the
  /// paper's explicit flush call, issued after each reduction broadcast.
  void flush_all(runtime::Pe& pe) {
    const std::size_t set = set_index(pe.id());
    bool any = false;
    for (std::size_t dest = 0; dest < dests_; ++dest) {
      if (!buffers_[set * dests_ + dest].items.empty()) {
        any = true;
        flush_buffer(pe, set, dest);
      }
    }
    NodeLocal& nl = node_[node_of_[pe.id()]];
    ++nl.stats.manual_flushes;
    if (!any) ++nl.stats.flushed_empty;
    if (config_.registry != nullptr) {
      config_.registry->add(obs_manual_flushes_, pe.id(), 1, pe.now());
    }
  }

  /// Items currently waiting in buffers writable by `pe` (test hook).
  std::size_t pending_items(runtime::PeId pe) const {
    const std::size_t set = set_index(pe);
    std::size_t count = 0;
    for (std::size_t dest = 0; dest < dests_; ++dest) {
      count += buffers_[set * dests_ + dest].items.size();
    }
    return count;
  }

  /// Folded totals across the per-node shards (by value: under the
  /// parallel engine each simulated node accumulates into its own
  /// cache-line-padded counters, summed here on demand).
  TramStats stats() const {
    TramStats total;
    for (const NodeLocal& nl : node_) {
      total.items_inserted += nl.stats.items_inserted;
      total.items_delivered += nl.stats.items_delivered;
      total.aggregate_messages += nl.stats.aggregate_messages;
      total.auto_flushes += nl.stats.auto_flushes;
      total.manual_flushes += nl.stats.manual_flushes;
      total.flushed_empty += nl.stats.flushed_empty;
      total.items_duplicated += nl.stats.items_duplicated;
    }
    return total;
  }
  const TramConfig& config() const { return config_; }

  // --- Optimistic-engine hooks (called via the engines' Snapshotable
  // registrations; the tram does not register itself).  The snapshot for
  // simulated node `n` covers exactly the state node-`n` tasks mutate:
  // the buffer sets owned by node-`n` PEs/processes (a buffer set is
  // written only by its owner, and a process never spans nodes) and the
  // node's TramStats shard.  Batch pools and fan-out scratch are
  // memory-only recycling state — a rollback may leave an extra drained
  // vector parked, which changes no observable behavior — so they are
  // deliberately not snapshotted.
  std::size_t speculative_checkpoint(std::uint32_t n) {
    NodeLocal& nl = node_[n];
    const std::size_t owned = owned_buffer_count(n);
    if (nl.ckpt_buffers.size() != owned) nl.ckpt_buffers.resize(owned);
    std::size_t bytes = sizeof(TramStats);
    std::size_t i = 0;
    const std::size_t sets = buffers_.size() / dests_;
    for (std::size_t set = 0; set < sets; ++set) {
      if (set_node(set) != n) continue;
      for (std::size_t dest = 0; dest < dests_; ++dest) {
        nl.ckpt_buffers[i] = buffers_[set * dests_ + dest].items;
        bytes += nl.ckpt_buffers[i].size() * sizeof(Entry);
        ++i;
      }
    }
    nl.ckpt_stats = nl.stats;
    return bytes;
  }
  void speculative_restore(std::uint32_t n) {
    NodeLocal& nl = node_[n];
    std::size_t i = 0;
    const std::size_t sets = buffers_.size() / dests_;
    for (std::size_t set = 0; set < sets; ++set) {
      if (set_node(set) != n) continue;
      for (std::size_t dest = 0; dest < dests_; ++dest) {
        buffers_[set * dests_ + dest].items = nl.ckpt_buffers[i];
        ++i;
      }
    }
    nl.stats = nl.ckpt_stats;
  }
  void speculative_commit(std::uint32_t n) {
    // Keep the snapshot vectors' capacity for the next epoch; just drop
    // their contents.
    for (auto& v : node_[n].ckpt_buffers) v.clear();
  }

 private:
  /// When the deliver functor can recompute an item's target PE
  /// (`target_of`), buffers store bare items — for ACIC that is 16
  /// instead of 24 bytes per entry, a third less write traffic on the
  /// hottest store stream in the simulator.  Otherwise entries carry
  /// the target alongside the item.
  static constexpr bool kDerivesTarget =
      requires(const DeliverFn& d, const T& t) {
        { d.target_of(t) } -> std::convertible_to<runtime::PeId>;
      };
  /// Optional second hook on concrete deliver functors: `prefetch(pe,
  /// item)` is called kDeliverPrefetchLookahead items before the item is
  /// dispatched, so the functor can issue software prefetches for the
  /// state the dispatch will touch (distance slot, CSR offsets row).
  /// Prefetches are pure hints — a functor with this hook delivers
  /// bit-identical simulations.
  static constexpr bool kHasPrefetch =
      requires(const DeliverFn& d, runtime::Pe& pe, const T& t) {
        d.prefetch(pe, t);
      };
  struct EntryWithTarget {
    runtime::PeId target;
    T item;
  };
  using Entry = std::conditional_t<kDerivesTarget, T, EntryWithTarget>;
  struct Buffer {
    std::vector<Entry> items;
  };

  /// Mutable scratch a delivery or flush touches outside its own buffer
  /// set, sharded per simulated node so the parallel engine's shards
  /// never share a cache line: batch pool, fan_out scratch, stats.
  /// (`buffers_` itself needs no sharding — a buffer set is written only
  /// by its owning PE/process, and a process never spans nodes.)
  struct alignas(64) NodeLocal {
    std::vector<std::vector<Entry>> pool;  // recycled batch stores
    std::vector<runtime::PeId> fanout_targets;      // fan_out scratch
    std::vector<std::vector<Entry>> fanout_groups;  // fan_out scratch
    std::vector<std::uint32_t> fanout_lane;         // PE lane -> group
    TramStats stats;
    // Optimistic-engine snapshot of this node's owned buffer slots (in
    // set-major iteration order) and stats shard.
    std::vector<std::vector<Entry>> ckpt_buffers;
    TramStats ckpt_stats;
  };

  static Entry make_entry(runtime::PeId target, const T& item) {
    if constexpr (kDerivesTarget) {
      (void)target;
      return item;
    } else {
      return EntryWithTarget{target, item};
    }
  }
  runtime::PeId entry_target(const Entry& entry) const {
    if constexpr (kDerivesTarget) {
      return deliver_.target_of(entry);
    } else {
      return entry.target;
    }
  }
  static const T& entry_item(const Entry& entry) {
    if constexpr (kDerivesTarget) {
      return entry;
    } else {
      return entry.item;
    }
  }

  bool set_owned_by_pe() const {
    return config_.mode == Aggregation::kWP ||
           config_.mode == Aggregation::kWW;
  }
  bool dest_is_pe() const {
    return config_.mode == Aggregation::kWW ||
           config_.mode == Aggregation::kPW;
  }
  std::size_t set_index(runtime::PeId pe) const {
    return set_owned_by_pe() ? pe : proc_of_[pe];
  }
  /// Simulated node owning buffer set `set` (a process never spans
  /// nodes, so a proc-owned set maps through its first PE).
  std::uint32_t set_node(std::size_t set) const {
    return set_owned_by_pe()
               ? node_of_[set]
               : node_of_[topo_.first_pe_of_proc(
                     static_cast<std::uint32_t>(set))];
  }
  std::size_t owned_buffer_count(std::uint32_t n) const {
    std::size_t count = 0;
    const std::size_t sets = buffers_.size() / dests_;
    for (std::size_t set = 0; set < sets; ++set) {
      if (set_node(set) == n) count += dests_;
    }
    return count;
  }

  std::size_t wire_bytes(std::size_t items) const {
    return 32 + items * config_.item_bytes;  // 32-byte envelope
  }

  /// Hands out a flat batch vector from the executing node's recycling
  /// pool (capacity pre-grown to the flush threshold), so steady-state
  /// flushes never touch the allocator.
  std::vector<Entry> acquire_vec(NodeLocal& nl, std::size_t reserve_hint) {
    std::vector<Entry> v;
    if (!nl.pool.empty()) {
      v = std::move(nl.pool.back());
      nl.pool.pop_back();
    }
    if (v.capacity() < reserve_hint) v.reserve(reserve_hint);
    return v;
  }

  /// Returns a drained batch to the executing node's pool.  Delivery
  /// tasks call this after their last item is dispatched; a batch that
  /// crossed nodes simply moves its backing store from the sender's pool
  /// to the receiver's.
  void recycle_vec(NodeLocal& nl, std::vector<Entry>&& v) {
    if (nl.pool.size() >= kMaxPooledBuffers) return;  // let it free
    v.clear();
    nl.pool.push_back(std::move(v));
  }

  void flush_buffer(runtime::Pe& src, std::size_t set, std::size_t dest) {
    Buffer& buffer = buffers_[set * dests_ + dest];
    ACIC_ASSERT(!buffer.items.empty());
    NodeLocal& nl = node_[node_of_[src.id()]];
    // The full buffer moves into the delivery task wholesale; the buffer
    // slot gets a recycled backing store in exchange.
    std::vector<Entry> batch = std::move(buffer.items);
    buffer.items = acquire_vec(nl, config_.buffer_items);
    if (config_.debug_reverse_batches) {
      std::reverse(batch.begin(), batch.end());
    }
    ++nl.stats.aggregate_messages;
    if (config_.registry != nullptr) {
      config_.registry->add(obs_aggregate_messages_, src.id(), 1,
                            src.now());
      // Occupancy at flush: how full the buffer was relative to the
      // auto-flush threshold (1.0 = full, i.e. an automatic flush).
      config_.registry->append(
          obs_flush_occupancy_, src.now(),
          static_cast<double>(batch.size()) /
              static_cast<double>(config_.buffer_items));
    }

    if (dest_is_pe()) {
      // All items share one destination PE: one aggregate straight there.
      const auto target = static_cast<runtime::PeId>(dest);
      src.send(target, wire_bytes(batch.size()),
               [this, batch = std::move(batch)](runtime::Pe& pe) mutable {
                 deliver_batch(pe, batch);
                 recycle_vec(node_[node_of_[pe.id()]], std::move(batch));
               });
      return;
    }

    // Process-destined aggregate: ship to the destination process's comm
    // thread, which fans items out to their worker PEs.  Local (same
    // process) aggregates skip the comm thread and deliver directly.
    const auto dst_proc = static_cast<std::uint32_t>(dest);
    if (dst_proc == topo_.proc_of(src.id())) {
      fan_out(src, batch);
      recycle_vec(nl, std::move(batch));
      return;
    }
    const runtime::PeId comm = topo_.comm_thread_of_proc(dst_proc);
    src.send(comm, wire_bytes(batch.size()),
             [this, batch = std::move(batch)](runtime::Pe& comm_pe) mutable {
               comm_pe.charge(config_.route_cost_us *
                              static_cast<double>(batch.size()));
               fan_out(comm_pe, batch);
               recycle_vec(node_[node_of_[comm_pe.id()]],
                           std::move(batch));
             });
  }

  /// Delivers `batch` by grouping items per target PE (preserving each
  /// target's item order) and sending each group as one intra-process
  /// message.
  void fan_out(runtime::Pe& from, const std::vector<Entry>& batch) {
    // Targets within one process-destined buffer are the PEs of a single
    // process, so each target maps to a lane [0, pes_per_proc) and the
    // group is found by direct indexing.  Groups are still created in
    // first-appearance order, preserving the send sequence the ordered
    // scan produced.  The scratch vectors live in the executing node's
    // shard (fan_out never reenters: sends only park tasks); group
    // backing stores come from — and return to — the batch pool.
    NodeLocal& nl = node_[node_of_[from.id()]];
    nl.fanout_targets.clear();
    nl.fanout_groups.clear();
    const runtime::PeId base =
        topo_.first_pe_of_proc(proc_of_[entry_target(batch.front())]);
    constexpr std::uint32_t kNoGroup = 0xffffffffu;
    nl.fanout_lane.assign(topo_.pes_per_proc, kNoGroup);
    for (const Entry& entry : batch) {
      const runtime::PeId target = entry_target(entry);
      const std::uint32_t lane = target - base;
      ACIC_HOT_ASSERT(lane < nl.fanout_lane.size());
      std::uint32_t g = nl.fanout_lane[lane];
      if (g == kNoGroup) {
        g = static_cast<std::uint32_t>(nl.fanout_targets.size());
        nl.fanout_lane[lane] = g;
        nl.fanout_targets.push_back(target);
        nl.fanout_groups.push_back(acquire_vec(nl, 0));
      }
      nl.fanout_groups[g].push_back(entry);
    }
    for (std::size_t g = 0; g < nl.fanout_targets.size(); ++g) {
      from.send(nl.fanout_targets[g], wire_bytes(nl.fanout_groups[g].size()),
                [this, group = std::move(nl.fanout_groups[g])](
                    runtime::Pe& pe) mutable {
                  deliver_batch(pe, group);
                  recycle_vec(node_[node_of_[pe.id()]], std::move(group));
                });
    }
    nl.fanout_groups.clear();
  }

  void deliver_batch(runtime::Pe& pe, const std::vector<Entry>& batch) {
    NodeLocal& nl = node_[node_of_[pe.id()]];
    // Steady-state fast path (no registry, no fault injection): one
    // charge and one handler call per item, nothing else in the loop.
    if (config_.registry == nullptr &&
        config_.debug_duplicate_every == 0) [[likely]] {
      const runtime::SimTime cost = config_.deliver_cost_us;
      const std::size_t count = batch.size();
      constexpr std::size_t kLook = util::kDeliverPrefetchLookahead;
      for (std::size_t i = 0; i < count; ++i) {
        if constexpr (kHasPrefetch) {
          if (i + kLook < count) {
            deliver_.prefetch(pe, entry_item(batch[i + kLook]));
          }
        }
        const Entry& entry = batch[i];
        ACIC_HOT_ASSERT(entry_target(entry) == pe.id());
        pe.charge(cost);
        deliver_(pe, entry_item(entry));
      }
      nl.stats.items_delivered += count;
      return;
    }
    for (const Entry& entry : batch) {
      ACIC_HOT_ASSERT(entry_target(entry) == pe.id());
      pe.charge(config_.deliver_cost_us);
      ++nl.stats.items_delivered;
      if (config_.registry != nullptr) [[unlikely]] {
        config_.registry->add(obs_items_delivered_, pe.id(), 1, pe.now());
      }
      deliver_(pe, entry_item(entry));
      // Fault injection counts per receiving node (every node duplicates
      // its own Nth delivered item), so behavior is thread-agnostic.
      if (config_.debug_duplicate_every != 0 &&
          nl.stats.items_delivered % config_.debug_duplicate_every == 0) {
        pe.charge(config_.deliver_cost_us);
        ++nl.stats.items_duplicated;
        deliver_(pe, entry_item(entry));
      }
    }
  }

  /// Bound on parked batch backing stores per node; beyond this, drained
  /// batches just free (keeps worst-case WW fan-outs from pinning
  /// memory).
  static constexpr std::size_t kMaxPooledBuffers = 256;

  runtime::Machine& machine_;
  TramConfig config_;
  DeliverFn deliver_;
  const runtime::Topology& topo_;
  std::vector<Buffer> buffers_;  // flat [set * dests_ + dest]
  std::size_t dests_ = 0;
  std::vector<std::uint32_t> proc_of_;        // PeId -> process (by table)
  std::vector<std::uint32_t> node_of_;        // PeId -> simulated node
  runtime::SimTime insert_charge_us_ = 0.0;   // per-insert CPU, mode-fixed
  std::vector<NodeLocal> node_;               // per-node mutable scratch

  // Registry handles; valid iff config_.registry != nullptr.
  obs::CounterId obs_items_inserted_;
  obs::CounterId obs_items_delivered_;
  obs::CounterId obs_aggregate_messages_;
  obs::CounterId obs_auto_flushes_;
  obs::CounterId obs_manual_flushes_;
  obs::SeriesId obs_flush_occupancy_;
};

}  // namespace acic::tram
