#pragma once
// tramlib — the message aggregation library from the paper (§II.D),
// reimplemented over the discrete-event runtime.
//
// SSSP sends an enormous number of tiny update messages; sending each one
// individually pays the per-message overhead every time.  Tramlib holds
// outgoing items in buffers and ships a whole buffer as one message when
// it fills (an *automatic flush*) or when the application asks (a
// *manual flush* — ACIC issues one during the broadcast after every
// reduction so the low-concurrency "tail" of the graph still advances).
//
// Buffer organization uses the paper's two-letter designations: the first
// letter says who owns a buffer *set* (W = one set per worker/PE, P = one
// set per process, written by all its PEs — which costs an atomic-access
// penalty per insert), the second says the destination granularity of the
// buffers inside a set (P = one buffer per destination process, W = one
// per destination PE).  The paper's library offers PP, WP and WW and
// finds WP best for SSSP; we also provide PW for completeness.
//
// Process-destined aggregates are addressed to the destination process's
// communication thread, which fans the items out to their target worker
// PEs over intra-process messages — the Charm++ SMP delivery path.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/registry.hpp"
#include "src/runtime/machine.hpp"
#include "src/util/assert.hpp"

namespace acic::tram {

/// First letter: buffer-set owner; second: destination granularity.
enum class Aggregation : std::uint8_t { kPP, kWP, kWW, kPW };

const char* aggregation_name(Aggregation mode);

/// Parses "PP" / "WP" / "WW" / "PW" (case-insensitive); asserts otherwise.
Aggregation aggregation_from_string(const std::string& name);

struct TramConfig {
  Aggregation mode = Aggregation::kWP;
  /// Automatic flush threshold, in items (the paper sweeps 512/1024/2048).
  std::size_t buffer_items = 1024;
  /// Serialized size of one item on the wire.
  std::size_t item_bytes = 16;
  /// Sender CPU per inserted item (copy into the buffer).
  runtime::SimTime insert_cost_us = 0.008;
  /// Extra per-insert cost for process-shared sets (atomic operations,
  /// paper §II.D).
  runtime::SimTime atomic_penalty_us = 0.012;
  /// Receiver CPU per delivered item (deserialize + dispatch).
  runtime::SimTime deliver_cost_us = 0.01;
  /// Comm-thread CPU per item when routing a process-destined aggregate.
  runtime::SimTime route_cost_us = 0.004;

  /// Fault injection for tests: every Nth delivered item is delivered a
  /// second time (at-least-once semantics, as after a network-level
  /// retransmission).  Label-correcting algorithms must tolerate this —
  /// duplicate updates are simply rejected.  0 disables.
  std::uint64_t debug_duplicate_every = 0;

  /// Fault injection for tests: reverse the item order of every flushed
  /// buffer (adversarial reordering — high-distance updates arrive
  /// before low-distance ones).  Correctness must be order-independent;
  /// only wasted-work counts may change.
  bool debug_reverse_batches = false;

  /// Optional observability registry.  When set, the tram publishes
  /// "tram/*" counters (inserts, deliveries, aggregate messages, auto
  /// vs manual flushes) and a "tram/flush_occupancy" series recording
  /// buffer fill at every flush.  Families are shared by name, so
  /// several tram instances (e.g. one per concurrent query) merge into
  /// machine-wide totals.  Must outlive the tram.
  obs::Registry* registry = nullptr;
};

struct TramStats {
  std::uint64_t items_inserted = 0;
  std::uint64_t items_delivered = 0;
  std::uint64_t aggregate_messages = 0;
  std::uint64_t auto_flushes = 0;
  std::uint64_t manual_flushes = 0;
  std::uint64_t flushed_empty = 0;  // manual flushes that found no items
  std::uint64_t items_duplicated = 0;  // fault-injection duplicates
};

/// Aggregating channel for items of type T.  The delivery handler runs on
/// the destination PE once per item, in buffer order.
template <typename T>
class Tram {
 public:
  using DeliverFn = std::function<void(runtime::Pe&, const T&)>;

  Tram(runtime::Machine& machine, TramConfig config, DeliverFn deliver)
      : machine_(machine),
        config_(config),
        deliver_(std::move(deliver)),
        topo_(machine.topology()) {
    const std::size_t sets = set_owned_by_pe()
                                 ? topo_.num_pes()
                                 : topo_.num_procs();
    const std::size_t dests = dest_is_pe() ? topo_.num_pes()
                                           : topo_.num_procs();
    buffers_.assign(sets, std::vector<Buffer>(dests));
    if (config_.registry != nullptr) {
      obs::Registry& reg = *config_.registry;
      obs_items_inserted_ = reg.counter("tram/items_inserted", true);
      obs_items_delivered_ = reg.counter("tram/items_delivered", true);
      obs_aggregate_messages_ =
          reg.counter("tram/aggregate_messages", true);
      obs_auto_flushes_ = reg.counter("tram/auto_flushes");
      obs_manual_flushes_ = reg.counter("tram/manual_flushes");
      obs_flush_occupancy_ = reg.series("tram/flush_occupancy");
    }
  }

  Tram(const Tram&) = delete;
  Tram& operator=(const Tram&) = delete;

  /// Queues `item` for delivery on `dst_pe`; flushes the buffer if full.
  void insert(runtime::Pe& src, runtime::PeId dst_pe, const T& item) {
    ACIC_ASSERT(dst_pe < topo_.num_pes());
    const std::size_t set = set_index(src.id());
    const std::size_t dest = dest_is_pe() ? dst_pe : topo_.proc_of(dst_pe);
    src.charge(config_.insert_cost_us +
               (set_owned_by_pe() ? 0.0 : config_.atomic_penalty_us));
    Buffer& buffer = buffers_[set][dest];
    buffer.items.push_back(Entry{dst_pe, item});
    ++stats_.items_inserted;
    if (config_.registry != nullptr) {
      config_.registry->add(obs_items_inserted_, src.id(), 1, src.now());
    }
    if (buffer.items.size() >= config_.buffer_items) {
      ++stats_.auto_flushes;
      if (config_.registry != nullptr) {
        config_.registry->add(obs_auto_flushes_, src.id(), 1, src.now());
      }
      flush_buffer(src, set, dest);
    }
  }

  /// Flushes every non-empty buffer in the set `pe` writes to — the
  /// paper's explicit flush call, issued after each reduction broadcast.
  void flush_all(runtime::Pe& pe) {
    const std::size_t set = set_index(pe.id());
    bool any = false;
    for (std::size_t dest = 0; dest < buffers_[set].size(); ++dest) {
      if (!buffers_[set][dest].items.empty()) {
        any = true;
        flush_buffer(pe, set, dest);
      }
    }
    ++stats_.manual_flushes;
    if (!any) ++stats_.flushed_empty;
    if (config_.registry != nullptr) {
      config_.registry->add(obs_manual_flushes_, pe.id(), 1, pe.now());
    }
  }

  /// Items currently waiting in buffers writable by `pe` (test hook).
  std::size_t pending_items(runtime::PeId pe) const {
    const std::size_t set = set_index(pe);
    std::size_t count = 0;
    for (const Buffer& buffer : buffers_[set]) count += buffer.items.size();
    return count;
  }

  const TramStats& stats() const { return stats_; }
  const TramConfig& config() const { return config_; }

 private:
  struct Entry {
    runtime::PeId target;
    T item;
  };
  struct Buffer {
    std::vector<Entry> items;
  };

  bool set_owned_by_pe() const {
    return config_.mode == Aggregation::kWP ||
           config_.mode == Aggregation::kWW;
  }
  bool dest_is_pe() const {
    return config_.mode == Aggregation::kWW ||
           config_.mode == Aggregation::kPW;
  }
  std::size_t set_index(runtime::PeId pe) const {
    return set_owned_by_pe() ? pe : topo_.proc_of(pe);
  }

  std::size_t wire_bytes(std::size_t items) const {
    return 32 + items * config_.item_bytes;  // 32-byte envelope
  }

  void flush_buffer(runtime::Pe& src, std::size_t set, std::size_t dest) {
    Buffer& buffer = buffers_[set][dest];
    ACIC_ASSERT(!buffer.items.empty());
    std::vector<Entry> batch;
    batch.swap(buffer.items);
    if (config_.debug_reverse_batches) {
      std::reverse(batch.begin(), batch.end());
    }
    ++stats_.aggregate_messages;
    if (config_.registry != nullptr) {
      config_.registry->add(obs_aggregate_messages_, src.id(), 1,
                            src.now());
      // Occupancy at flush: how full the buffer was relative to the
      // auto-flush threshold (1.0 = full, i.e. an automatic flush).
      config_.registry->append(
          obs_flush_occupancy_, src.now(),
          static_cast<double>(batch.size()) /
              static_cast<double>(config_.buffer_items));
    }

    if (dest_is_pe()) {
      // All items share one destination PE: one aggregate straight there.
      const auto target = static_cast<runtime::PeId>(dest);
      src.send(target, wire_bytes(batch.size()),
               [this, batch = std::move(batch)](runtime::Pe& pe) {
                 deliver_batch(pe, batch);
               });
      return;
    }

    // Process-destined aggregate: ship to the destination process's comm
    // thread, which fans items out to their worker PEs.  Local (same
    // process) aggregates skip the comm thread and deliver directly.
    const auto dst_proc = static_cast<std::uint32_t>(dest);
    if (dst_proc == topo_.proc_of(src.id())) {
      fan_out(src, batch);
      return;
    }
    const runtime::PeId comm = topo_.comm_thread_of_proc(dst_proc);
    src.send(comm, wire_bytes(batch.size()),
             [this, batch = std::move(batch)](runtime::Pe& comm_pe) {
               comm_pe.charge(config_.route_cost_us *
                              static_cast<double>(batch.size()));
               fan_out(comm_pe, batch);
             });
  }

  /// Delivers `batch` by grouping items per target PE (preserving each
  /// target's item order) and sending each group as one intra-process
  /// message.
  void fan_out(runtime::Pe& from, const std::vector<Entry>& batch) {
    // Targets within one process-destined buffer are the PEs of a single
    // process, so a tiny ordered scan suffices.
    std::vector<runtime::PeId> targets;
    std::vector<std::vector<Entry>> groups;
    for (const Entry& entry : batch) {
      std::size_t g = 0;
      while (g < targets.size() && targets[g] != entry.target) ++g;
      if (g == targets.size()) {
        targets.push_back(entry.target);
        groups.emplace_back();
      }
      groups[g].push_back(entry);
    }
    for (std::size_t g = 0; g < targets.size(); ++g) {
      from.send(targets[g], wire_bytes(groups[g].size()),
                [this, group = std::move(groups[g])](runtime::Pe& pe) {
                  deliver_batch(pe, group);
                });
    }
  }

  void deliver_batch(runtime::Pe& pe, const std::vector<Entry>& batch) {
    for (const Entry& entry : batch) {
      ACIC_ASSERT(entry.target == pe.id());
      pe.charge(config_.deliver_cost_us);
      ++stats_.items_delivered;
      if (config_.registry != nullptr) {
        config_.registry->add(obs_items_delivered_, pe.id(), 1, pe.now());
      }
      deliver_(pe, entry.item);
      if (config_.debug_duplicate_every != 0 &&
          stats_.items_delivered % config_.debug_duplicate_every == 0) {
        pe.charge(config_.deliver_cost_us);
        ++stats_.items_duplicated;
        deliver_(pe, entry.item);
      }
    }
  }

  runtime::Machine& machine_;
  TramConfig config_;
  DeliverFn deliver_;
  const runtime::Topology& topo_;
  std::vector<std::vector<Buffer>> buffers_;  // [set][dest]
  TramStats stats_;

  // Registry handles; valid iff config_.registry != nullptr.
  obs::CounterId obs_items_inserted_;
  obs::CounterId obs_items_delivered_;
  obs::CounterId obs_aggregate_messages_;
  obs::CounterId obs_auto_flushes_;
  obs::CounterId obs_manual_flushes_;
  obs::SeriesId obs_flush_occupancy_;
};

}  // namespace acic::tram
