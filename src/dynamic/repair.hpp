#pragma once
// Incremental SSSP repair planning (SSSP-Del style).
//
// Given a correct SSSP state (distances + witness parent pointers) for
// some past epoch and the applied-mutation span separating it from the
// current graph, plan_repair computes the cheapest sound warm start for
// the ACIC engine:
//
//   * deletions / weight increases of *tree* edges (parent[dst] == src)
//     invalidate the entire shortest-path subtree hanging off dst —
//     every descendant's distance depended on that edge.  The affected
//     set is the union of those subtrees (closed under the parent
//     relation), reset to +infinity;
//   * the *boundary* re-seeds the affected region: for every affected
//     vertex, the best candidate over in-edges from unaffected finite
//     vertices (this needs the reverse CSR the snapshots carry);
//   * insertions / weight decreases seed their head vertex directly
//     when they improve it — relaxations start from endpoint frontiers,
//     never from the source.
//
// Soundness of the warm start (asserted elementwise by the tests and
// the bench harness): after invalidation every remaining finite
// distance is an achievable path length in the *new* graph — an
// unaffected vertex's tree path survives intact, because an affected
// ancestor would have put the vertex in the affected set.  Seeds cover
// every edge crossing from the unaffected region into the affected one
// and every improving new edge, so the engine's label-correcting fixed
// point from (warm distances, seeds) equals the from-scratch distances.
//
// Non-tree deletions and increases are free: a removed edge that was
// not a witness lies on no shortest path, so distances are untouched.
// This asymmetry — most mutations touch nothing, a few invalidate a
// small subtree — is exactly why incremental repair beats recompute at
// realistic mutation rates (bench/dynamic_mutation quantifies the
// crossover).

#include <cstdint>
#include <vector>

#include "src/dynamic/dynamic_graph.hpp"
#include "src/dynamic/mutation.hpp"
#include "src/graph/types.hpp"
#include "src/sssp/update.hpp"

namespace acic::dynamic {

/// A consistent SSSP state for one (source, epoch) pair.  `parent[v]`
/// is a witness in-neighbor (dist[parent[v]] + w == dist[v]);
/// kInvalidVertex for the source and unreachable vertices.
struct SsspState {
  graph::VertexId source = 0;
  std::uint64_t epoch = 0;
  std::vector<graph::Dist> dist;
  std::vector<graph::VertexId> parent;
};

/// The warm start for one repair: distances after subtree invalidation,
/// plus the seed updates to inject.
struct RepairPlan {
  /// Vertices whose distance was invalidated (the union of affected
  /// subtrees), ascending.  Empty when no tree edge was disturbed.
  std::vector<graph::VertexId> affected;
  /// Seed updates (vertex, candidate distance), sorted by (vertex,
  /// dist) — at most one per vertex (the best candidate).
  std::vector<sssp::Update> seeds;
  /// state.dist with the affected set reset to +inf: the engine's
  /// warm_dist.
  std::vector<graph::Dist> warm_dist;

  bool touches_nothing() const {
    return affected.empty() && seeds.empty();
  }
};

/// Plans the repair that brings `state` (valid at the epoch the span
/// starts from) to `target` (the span's end epoch).  `span` must be
/// DynamicGraph::applied_since(state.epoch) for the same graph.
RepairPlan plan_repair(const GraphSnapshot& target, const SsspState& state,
                       std::span<const AppliedMutation> span);

/// Canonical witness parents for `dist` on `snap`: parent[v] is the
/// smallest in-neighbor u (ties broken by smallest weight) with
/// dist[u] + w(u, v) == dist[v]; kInvalidVertex for the source and
/// non-finite vertices.  A pure function of (graph, dist), so replays
/// agree bit for bit.
std::vector<graph::VertexId> compute_parents(
    const GraphSnapshot& snap, graph::VertexId source,
    const std::vector<graph::Dist>& dist);

/// Recomputes parents only where needed after a repair: for every
/// vertex in `affected` and every vertex whose distance differs between
/// `old_dist` and `new_dist`.  Other vertices keep `parents` untouched
/// (their witness edge provably survived the span).  Returns the number
/// of recomputed entries.
std::size_t refresh_parents(const GraphSnapshot& snap,
                            graph::VertexId source,
                            const std::vector<graph::Dist>& old_dist,
                            const std::vector<graph::Dist>& new_dist,
                            const std::vector<graph::VertexId>& affected,
                            std::vector<graph::VertexId>* parents);

/// Checks the SsspState invariants on `snap`: dist is a valid SSSP
/// fixed point witness-wise and every finite non-source vertex's parent
/// edge exists with dist[parent] + w == dist[v].  Test support.
bool state_is_consistent(const GraphSnapshot& snap, const SsspState& state,
                         std::string* error = nullptr);

}  // namespace acic::dynamic
