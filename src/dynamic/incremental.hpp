#pragma once
// IncrementalSssp — keeps one (source, distances, parents) state exact
// across mutation epochs of a DynamicGraph.
//
// Each refresh() call advances the state to the graph's current epoch.
// The repair planner (src/dynamic/repair.hpp) turns the applied-mutation
// span into a warm start; the ACIC engine then runs in warm mode
// (AcicEngineOptions::warm_dist + seeds) on a fresh simulated machine,
// relaxing only from the invalidated boundary and the improved edges —
// never from the source.  When the planner's affected set exceeds
// `recompute_fraction` of the graph, refresh() falls back to a cold
// from-scratch solve instead: past that point repair re-relaxes most of
// the graph anyway and the planning overhead is pure loss.  The
// crossover is measured, not assumed — bench/dynamic_mutation sweeps it.
//
// Every refresh leaves the state exact for its epoch: distances are the
// label-correcting fixed point on that epoch's graph (the property test
// in tests/dynamic_test.cpp asserts elementwise equality against
// sequential Dijkstra after every batch), and parents are canonical
// witnesses (compute_parents / refresh_parents), so the next repair can
// trust them.
//
// Observability (when config.registry is set): counters
// "dynamic/mutations_consumed", "dynamic/repairs",
// "dynamic/recomputes", "dynamic/refresh_skipped",
// "dynamic/repair_updates", "dynamic/recompute_updates",
// "dynamic/seeds_injected", plus series "dynamic/subtree_size" and
// "dynamic/parents_refreshed" keyed by epoch (the x axis is the epoch
// number, not simulated time — refreshes happen between machine runs).

#include <cstdint>
#include <vector>

#include "src/core/config.hpp"
#include "src/dynamic/dynamic_graph.hpp"
#include "src/dynamic/repair.hpp"
#include "src/graph/types.hpp"
#include "src/obs/registry.hpp"
#include "src/runtime/topology.hpp"

namespace acic::dynamic {

struct IncrementalConfig {
  /// Per-solve engine configuration (thresholds, tram, costs).
  core::AcicConfig engine;
  /// Simulated machine shape for every solve (fresh machine per solve,
  /// so simulated time restarts at zero each epoch).
  runtime::Topology topology = runtime::Topology::tiny(4);
  /// Host threads for Machine::run (1 = serial event loop).
  unsigned threads = 1;
  /// Fall back to a cold from-scratch solve when the affected set
  /// exceeds this fraction of the vertices.  1.0 forces repair always,
  /// 0.0 forces recompute always (the bench's recompute arm).
  double recompute_fraction = 0.25;
  /// Optional observability registry; must outlive the solver.
  obs::Registry* registry = nullptr;
};

/// Outcome of one refresh() call.
struct RefreshStats {
  std::uint64_t from_epoch = 0;
  std::uint64_t to_epoch = 0;
  /// The span touched no tree edge and improved nothing: distances were
  /// already exact for to_epoch, no engine ran.
  bool skipped = false;
  /// Affected set exceeded recompute_fraction: cold solve instead of
  /// repair (stats below then describe the cold solve).
  bool recomputed = false;
  std::size_t mutations_consumed = 0;
  std::size_t affected = 0;        // invalidated vertices
  std::size_t seeds = 0;           // injected warm-start updates
  std::size_t parents_refreshed = 0;
  /// Engine work: updates created during the solve (the paper's primary
  /// work metric; 0 when skipped).
  std::uint64_t updates_created = 0;
  std::uint64_t reduction_cycles = 0;
};

class IncrementalSssp {
 public:
  /// Performs the initial cold solve at the graph's current epoch.
  /// `graph` and `config.registry` must outlive the solver.
  IncrementalSssp(const DynamicGraph& graph, graph::VertexId source,
                  IncrementalConfig config = {});

  IncrementalSssp(const IncrementalSssp&) = delete;
  IncrementalSssp& operator=(const IncrementalSssp&) = delete;

  /// The maintained state; exact for state().epoch.
  const SsspState& state() const { return state_; }
  graph::VertexId source() const { return state_.source; }
  std::uint64_t epoch() const { return state_.epoch; }

  /// Advances the state to the graph's current epoch (no-op stats when
  /// already current).  Call after every DynamicGraph::apply, or less
  /// often — multi-epoch spans collapse correctly.
  RefreshStats refresh();

  /// Lifetime totals across all solves (cold + repairs), for the bench's
  /// repair-vs-recompute comparison.
  std::uint64_t total_updates_created() const { return total_updates_; }
  std::uint64_t repair_count() const { return repairs_; }
  std::uint64_t recompute_count() const { return recomputes_; }

 private:
  /// Runs one engine solve on a fresh machine; warm iff plan != nullptr.
  void solve(const GraphSnapshot& snap, const RepairPlan* plan,
             RefreshStats* stats);

  const DynamicGraph& graph_;
  IncrementalConfig config_;
  SsspState state_;

  std::uint64_t total_updates_ = 0;
  std::uint64_t repairs_ = 0;
  std::uint64_t recomputes_ = 0;

  // Registry handles; valid iff config_.registry != nullptr.
  obs::CounterId obs_mutations_;
  obs::CounterId obs_repairs_;
  obs::CounterId obs_recomputes_;
  obs::CounterId obs_skipped_;
  obs::CounterId obs_repair_updates_;
  obs::CounterId obs_recompute_updates_;
  obs::CounterId obs_seeds_;
  obs::SeriesId obs_subtree_size_;
  obs::SeriesId obs_parents_refreshed_;
};

}  // namespace acic::dynamic
