#include "src/dynamic/dynamic_graph.hpp"

#include <algorithm>
#include <utility>

#include "src/graph/validate.hpp"
#include "src/util/assert.hpp"

namespace acic::dynamic {

using graph::Csr;
using graph::Neighbor;
using graph::VertexId;
using graph::Weight;

namespace {

/// One row-local change: remove the entry keyed `key`, or upsert
/// (key, weight).  The simple-graph contract makes `key` unique per row.
struct RowEdit {
  VertexId row = 0;
  VertexId key = 0;
  Weight weight = 0.0;
  bool remove = false;
};

/// Binary search for the row entry with dst == key (rows are sorted by
/// (dst, weight) and simple, so dst alone is the key).
const Neighbor* find_in_row(std::span<const Neighbor> row, VertexId key) {
  const auto it = std::lower_bound(
      row.begin(), row.end(), key,
      [](const Neighbor& nb, VertexId k) { return nb.dst < k; });
  return it != row.end() && it->dst == key ? &*it : nullptr;
}

/// Applies `edits` (sorted by row, unique (row, key)) to `old`,
/// returning the patched CSR.  Untouched rows are copied wholesale;
/// touched rows are rebuilt in (dst, weight) order.
Csr patch_csr(const Csr& old, const std::vector<RowEdit>& edits) {
  const VertexId n = old.num_vertices();
  std::vector<std::size_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  std::vector<Neighbor> neighbors;
  // Every edit changes the edge count by at most one in either
  // direction; reserving the upper bound keeps the fill allocation-free.
  neighbors.reserve(old.num_edges() + edits.size());

  std::size_t e = 0;  // next unconsumed edit
  std::vector<Neighbor> scratch;
  for (VertexId v = 0; v < n; ++v) {
    const std::span<const Neighbor> row = old.out_neighbors(v);
    if (e >= edits.size() || edits[e].row != v) {
      neighbors.insert(neighbors.end(), row.begin(), row.end());
    } else {
      scratch.assign(row.begin(), row.end());
      for (; e < edits.size() && edits[e].row == v; ++e) {
        const RowEdit& edit = edits[e];
        const auto it = std::lower_bound(
            scratch.begin(), scratch.end(), edit.key,
            [](const Neighbor& nb, VertexId k) { return nb.dst < k; });
        const bool present = it != scratch.end() && it->dst == edit.key;
        if (edit.remove) {
          ACIC_ASSERT_MSG(present, "patch_csr: removing an absent edge");
          scratch.erase(it);
        } else if (present) {
          it->weight = edit.weight;
        } else {
          scratch.insert(it, Neighbor{edit.key, edit.weight});
        }
      }
      neighbors.insert(neighbors.end(), scratch.begin(), scratch.end());
    }
    offsets[v + 1] = neighbors.size();
  }
  ACIC_ASSERT(e == edits.size());
  return Csr::from_parts(std::move(offsets), std::move(neighbors));
}

/// Reverse adjacency of `csr`: row v holds Neighbor{src, weight} for
/// every in-edge (src, v), in canonical (src, weight) order.
Csr build_reverse(const Csr& csr) {
  const VertexId n = csr.num_vertices();
  graph::EdgeList reversed(n, {});
  reversed.reserve(csr.num_edges());
  for (VertexId v = 0; v < n; ++v) {
    for (const Neighbor& nb : csr.out_neighbors(v)) {
      reversed.add(nb.dst, v, nb.weight);
    }
  }
  return Csr::from_edge_list(reversed);
}

}  // namespace

DynamicGraph::DynamicGraph(graph::EdgeList list, unsigned threads) {
  list.remove_self_loops();
  list.remove_duplicates();
  base_ = Csr::from_edge_list(list, threads);
  init_from_base();
}

DynamicGraph::DynamicGraph(graph::Csr base) : base_(std::move(base)) {
#ifndef NDEBUG
  const graph::ValidationResult check =
      graph::validate_csr(base_, /*require_simple=*/true);
  ACIC_ASSERT_MSG(check.ok, check.error.c_str());
#endif
  init_from_base();
}

void DynamicGraph::init_from_base() {
  auto snap = std::make_shared<GraphSnapshot>();
  snap->epoch = 0;
  snap->csr = base_;
  snap->reverse = build_reverse(base_);
  snapshot_ = std::move(snap);
  epoch_end_.assign(1, 0);
}

bool DynamicGraph::edge_weight(VertexId u, VertexId v,
                               Weight* weight) const {
  ACIC_ASSERT(u < num_vertices() && v < num_vertices());
  const Neighbor* nb = find_in_row(snapshot_->csr.out_neighbors(u), v);
  if (nb == nullptr) return false;
  if (weight != nullptr) *weight = nb->weight;
  return true;
}

ApplyStats DynamicGraph::apply(const MutationBatch& batch) {
  const std::uint64_t new_epoch = snapshot_->epoch + 1;
  ApplyStats stats;
  stats.epoch = new_epoch;

  // Collapse the batch: last writer wins per (src, dst), self edges and
  // out-of-range endpoints never reach the graph.  The surviving
  // requests are applied in (src, dst) order — the batch's submission
  // order decides only *which* request survives, not apply order, so
  // the epoch's log is a canonical function of the collapsed set.
  struct Request {
    VertexId src, dst;
    MutationKind kind;
    Weight weight;
  };
  std::vector<Request> requests;
  requests.reserve(batch.size());
  for (const Mutation& m : batch) {
    ACIC_ASSERT_MSG(m.src < num_vertices() && m.dst < num_vertices(),
                    "mutation endpoint outside the graph");
    if (m.src == m.dst) {
      ++stats.rejected;  // self edges violate the simple-graph contract
      continue;
    }
    const auto it = std::find_if(
        requests.begin(), requests.end(), [&m](const Request& r) {
          return r.src == m.src && r.dst == m.dst;
        });
    if (it != requests.end()) {
      ++stats.rejected;  // the earlier request is superseded
      *it = Request{m.src, m.dst, m.kind, m.weight};
    } else {
      requests.push_back(Request{m.src, m.dst, m.kind, m.weight});
    }
  }
  std::sort(requests.begin(), requests.end(),
            [](const Request& a, const Request& b) {
              if (a.src != b.src) return a.src < b.src;
              return a.dst < b.dst;
            });

  std::vector<RowEdit> forward_edits;
  std::vector<RowEdit> reverse_edits;
  forward_edits.reserve(requests.size());
  reverse_edits.reserve(requests.size());
  const Csr& cur = snapshot_->csr;
  for (const Request& r : requests) {
    const Neighbor* existing = find_in_row(cur.out_neighbors(r.src), r.dst);
    AppliedMutation record;
    record.epoch = new_epoch;
    record.src = r.src;
    record.dst = r.dst;
    switch (r.kind) {
      case MutationKind::kInsert:
      case MutationKind::kReweight:
        if (existing == nullptr) {
          if (r.kind == MutationKind::kReweight) {
            ++stats.rejected;  // reweight never creates an edge
            continue;
          }
          record.kind = MutationKind::kInsert;
          record.new_weight = r.weight;
          ++stats.inserted;
        } else {
          if (existing->weight == r.weight) {
            ++stats.rejected;  // no-op upsert
            continue;
          }
          record.kind = MutationKind::kReweight;
          record.old_weight = existing->weight;
          record.new_weight = r.weight;
          ++stats.reweighted;
        }
        forward_edits.push_back(RowEdit{r.src, r.dst, r.weight, false});
        reverse_edits.push_back(RowEdit{r.dst, r.src, r.weight, false});
        break;
      case MutationKind::kRemove:
        if (existing == nullptr) {
          ++stats.rejected;
          continue;
        }
        record.kind = MutationKind::kRemove;
        record.old_weight = existing->weight;
        ++stats.removed;
        forward_edits.push_back(RowEdit{r.src, r.dst, 0.0, true});
        reverse_edits.push_back(RowEdit{r.dst, r.src, 0.0, true});
        break;
    }
    record.timestamp = ++clock_;
    log_.push_back(record);
  }
  std::sort(reverse_edits.begin(), reverse_edits.end(),
            [](const RowEdit& a, const RowEdit& b) {
              if (a.row != b.row) return a.row < b.row;
              return a.key < b.key;
            });

  auto next = std::make_shared<GraphSnapshot>();
  next->epoch = new_epoch;
  next->csr = patch_csr(cur, forward_edits);
  next->reverse = patch_csr(snapshot_->reverse, reverse_edits);
#ifndef NDEBUG
  // Every mutation epoch must leave full CSR invariants intact: sorted
  // rows, in-range destinations, no duplicate or self edges.
  const graph::ValidationResult fwd =
      graph::validate_csr(next->csr, /*require_simple=*/true);
  ACIC_ASSERT_MSG(fwd.ok, fwd.error.c_str());
  const graph::ValidationResult rev =
      graph::validate_csr(next->reverse, /*require_simple=*/true);
  ACIC_ASSERT_MSG(rev.ok, rev.error.c_str());
  ACIC_ASSERT(next->csr.num_edges() == next->reverse.num_edges());
#endif
  if (retain_history_) {
    if (history_.empty()) history_.push_back(snapshot_);
    history_.push_back(next);
  }
  snapshot_ = std::move(next);
  epoch_end_.push_back(log_.size());
  return stats;
}

std::span<const AppliedMutation> DynamicGraph::applied_since(
    std::uint64_t epoch) const {
  ACIC_ASSERT_MSG(epoch < epoch_end_.size(),
                  "applied_since: epoch is in the future");
  const std::size_t first = epoch_end_[epoch];
  return {log_.data() + first, log_.size() - first};
}

void DynamicGraph::set_retain_history(bool retain) {
  retain_history_ = retain;
  if (!retain) history_.clear();
}

std::shared_ptr<const GraphSnapshot> DynamicGraph::snapshot_at(
    std::uint64_t epoch) const {
  if (epoch == snapshot_->epoch) return snapshot_;
  for (const auto& snap : history_) {
    if (snap->epoch == epoch) return snap;
  }
  return nullptr;
}

}  // namespace acic::dynamic
