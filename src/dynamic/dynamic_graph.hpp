#pragma once
// DynamicGraph — a mutable, versioned wrapper around the read-only
// graph::Csr the rest of the repository runs on.
//
// Mutation batches (src/dynamic/mutation.hpp) apply atomically: one
// apply() call advances the epoch counter by one, stamps every applied
// record with the graph's monotone logical clock, and publishes a fresh
// immutable *snapshot*.  Readers never observe a half-applied batch:
//
//   * snapshot_ptr() hands out shared ownership of the current
//     GraphSnapshot; a solver engine that holds the pointer keeps "its"
//     graph alive for the duration of its run even while the
//     DynamicGraph moves on — this is how QueryService answers queries
//     on a graph mutating under load (bounded staleness: a query is
//     exact for the epoch current at its admission).
//   * snapshot() / csr() view the newest epoch; addresses are only
//     stable until the next apply(), so anything long-lived takes the
//     shared pointer.
//
// Each snapshot carries the forward CSR *and* a reverse CSR (row v =
// in-edges of v as Neighbor{src, weight}): deletion repair needs
// in-edges to find the boundary of an invalidated subtree, and witness
// parent computation needs them too.  Both are patched incrementally
// per epoch — O(|touched rows| + |E| row copies), never an edge-list
// round trip — and debug builds re-validate full CSR invariants
// (graph::validate_csr with require_simple) after every epoch.
//
// The complete applied-mutation log is retained: serialization writes
// (base CSR + log) and replays it (src/graph/serialize.hpp), and
// applied_since(epoch) gives repair planners the exact span separating
// a stale SSSP state from the current graph.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/dynamic/mutation.hpp"
#include "src/graph/csr.hpp"
#include "src/graph/edge_list.hpp"
#include "src/graph/types.hpp"

namespace acic::dynamic {

/// One immutable epoch of the graph.  Shared via shared_ptr so in-flight
/// readers pin exactly the epochs they still need.
struct GraphSnapshot {
  std::uint64_t epoch = 0;
  graph::Csr csr;      // forward adjacency (the solver-facing graph)
  graph::Csr reverse;  // row v = in-edges of v as Neighbor{src, weight}
};

class DynamicGraph {
 public:
  /// Builds epoch 0 from an edge list, normalizing it to the simple-
  /// graph contract first (self loops dropped, duplicate (src, dst)
  /// pairs collapsed to the lightest — the dynamic mutation API is
  /// keyed on (src, dst), so multigraphs are not representable).
  explicit DynamicGraph(graph::EdgeList list, unsigned threads = 1);

  /// Adopts an already-simple CSR as epoch 0 (asserted in debug builds;
  /// use the EdgeList constructor for graphs straight from the
  /// generators, which may contain duplicates).
  explicit DynamicGraph(graph::Csr base);

  DynamicGraph(const DynamicGraph&) = delete;
  DynamicGraph& operator=(const DynamicGraph&) = delete;
  // Movable so loaders (graph::load_dynamic_graph) can return by value.
  DynamicGraph(DynamicGraph&&) = default;
  DynamicGraph& operator=(DynamicGraph&&) = default;

  graph::VertexId num_vertices() const { return snapshot_->csr.num_vertices(); }
  std::size_t num_edges() const { return snapshot_->csr.num_edges(); }
  std::uint64_t epoch() const { return snapshot_->epoch; }

  /// Current-epoch views.  Address stable only until the next apply();
  /// long-lived readers take snapshot_ptr().
  const GraphSnapshot& snapshot() const { return *snapshot_; }
  const graph::Csr& csr() const { return snapshot_->csr; }
  std::shared_ptr<const GraphSnapshot> snapshot_ptr() const {
    return snapshot_;
  }

  /// Applies one batch as a new epoch.  Within the batch, later requests
  /// for the same (src, dst) pair supersede earlier ones; the collapsed
  /// effect is applied in (src, dst) order, each applied record stamped
  /// with the next logical-clock tick — fully deterministic in the
  /// submitted stream.  Vertex count never changes (mutations are
  /// edge-only).  Batches that collapse to nothing still advance the
  /// epoch (callers rely on apply() == one epoch).
  ApplyStats apply(const MutationBatch& batch);

  /// Current weight of edge (u, v); false if absent.
  bool edge_weight(graph::VertexId u, graph::VertexId v,
                   graph::Weight* weight) const;

  /// The base (epoch 0) graph and the full applied log — together they
  /// reproduce every epoch; src/graph/serialize.hpp persists exactly
  /// this pair.
  const graph::Csr& base() const { return base_; }
  const std::vector<AppliedMutation>& log() const { return log_; }

  /// Applied records strictly after `epoch` (i.e. of epochs
  /// epoch+1 .. epoch()).  `epoch` must not exceed the current epoch.
  std::span<const AppliedMutation> applied_since(std::uint64_t epoch) const;

  /// When enabled *before* the epochs of interest, every snapshot is
  /// retained and addressable by epoch — the verification harnesses use
  /// this to check a query answered at epoch e against a from-scratch
  /// solve on exactly epoch e's graph.  Off by default (memory).
  void set_retain_history(bool retain);
  std::shared_ptr<const GraphSnapshot> snapshot_at(
      std::uint64_t epoch) const;

 private:
  void init_from_base();

  graph::Csr base_;
  std::shared_ptr<const GraphSnapshot> snapshot_;
  std::vector<AppliedMutation> log_;
  /// epoch_end_[e] = log_ size after epoch e applied (epoch_end_[0] = 0).
  std::vector<std::size_t> epoch_end_;
  std::uint64_t clock_ = 0;
  bool retain_history_ = false;
  /// history_[e] = snapshot of epoch e; only epochs applied while
  /// retain_history_ was on are present (plus the current snapshot).
  std::vector<std::shared_ptr<const GraphSnapshot>> history_;
};

}  // namespace acic::dynamic
