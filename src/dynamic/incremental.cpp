#include "src/dynamic/incremental.hpp"

#include <memory>
#include <utility>

#include "src/core/acic.hpp"
#include "src/graph/partition.hpp"
#include "src/runtime/machine.hpp"
#include "src/util/assert.hpp"

namespace acic::dynamic {

using graph::VertexId;

IncrementalSssp::IncrementalSssp(const DynamicGraph& graph,
                                 VertexId source, IncrementalConfig config)
    : graph_(graph), config_(std::move(config)) {
  ACIC_ASSERT_MSG(source < graph_.num_vertices(),
                  "source outside the graph");
  config_.topology.validate();
  if (config_.registry != nullptr) {
    obs::Registry& reg = *config_.registry;
    obs_mutations_ = reg.counter("dynamic/mutations_consumed");
    obs_repairs_ = reg.counter("dynamic/repairs");
    obs_recomputes_ = reg.counter("dynamic/recomputes");
    obs_skipped_ = reg.counter("dynamic/refresh_skipped");
    obs_repair_updates_ = reg.counter("dynamic/repair_updates");
    obs_recompute_updates_ = reg.counter("dynamic/recompute_updates");
    obs_seeds_ = reg.counter("dynamic/seeds_injected");
    obs_subtree_size_ = reg.series("dynamic/subtree_size");
    obs_parents_refreshed_ = reg.series("dynamic/parents_refreshed");
  }

  state_.source = source;
  state_.epoch = graph_.epoch();
  const auto snap = graph_.snapshot_ptr();
  RefreshStats initial;  // constructor-time cold solve; stats discarded
  solve(*snap, /*plan=*/nullptr, &initial);
}

RefreshStats IncrementalSssp::refresh() {
  RefreshStats stats;
  stats.from_epoch = state_.epoch;
  stats.to_epoch = graph_.epoch();
  if (stats.to_epoch == stats.from_epoch) {
    stats.skipped = true;
    return stats;
  }
  ACIC_ASSERT_MSG(stats.to_epoch > stats.from_epoch,
                  "solver state is ahead of the graph");

  const auto snap = graph_.snapshot_ptr();
  const std::span<const AppliedMutation> span =
      graph_.applied_since(state_.epoch);
  stats.mutations_consumed = span.size();

  const RepairPlan plan = plan_repair(*snap, state_, span);
  const double affected_fraction =
      static_cast<double>(plan.affected.size()) /
      static_cast<double>(graph_.num_vertices());
  stats.affected = plan.affected.size();
  stats.seeds = plan.seeds.size();

  if (plan.touches_nothing()) {
    // Every mutation in the span was repair-neutral (non-tree removals,
    // weight increases off the tree, non-improving inserts): the old
    // distances are already the new fixed point, and the stored parents
    // stay valid witnesses too — removing or increasing a *parent* edge
    // would have produced an invalidation root, decreasing one would
    // have produced a seed, and neither inserts nor non-parent changes
    // touch a stored witness.
    stats.skipped = true;
    state_.epoch = snap->epoch;
    if (config_.registry != nullptr) {
      obs::Registry& reg = *config_.registry;
      reg.add(obs_mutations_, 0, span.size(), 0.0);
      reg.add(obs_skipped_, 0, 1, 0.0);
    }
    return stats;
  }

  if (affected_fraction > config_.recompute_fraction) {
    stats.recomputed = true;
    solve(*snap, /*plan=*/nullptr, &stats);
  } else {
    solve(*snap, &plan, &stats);
  }

  if (config_.registry != nullptr) {
    obs::Registry& reg = *config_.registry;
    const double x = static_cast<double>(stats.to_epoch);
    reg.add(obs_mutations_, 0, span.size(), 0.0);
    if (stats.recomputed) {
      reg.add(obs_recomputes_, 0, 1, 0.0);
      reg.add(obs_recompute_updates_, 0, stats.updates_created, 0.0);
    } else {
      reg.add(obs_repairs_, 0, 1, 0.0);
      reg.add(obs_repair_updates_, 0, stats.updates_created, 0.0);
      reg.add(obs_seeds_, 0, stats.seeds, 0.0);
    }
    reg.append(obs_subtree_size_, x, static_cast<double>(stats.affected));
    reg.append(obs_parents_refreshed_, x,
               static_cast<double>(stats.parents_refreshed));
  }
  return stats;
}

void IncrementalSssp::solve(const GraphSnapshot& snap, const RepairPlan* plan,
                            RefreshStats* stats) {
  // Fresh machine per solve: simulated time restarts at zero, so epochs
  // never interfere and schedules stay deterministic functions of
  // (graph, warm state, seeds).
  runtime::Machine machine(config_.topology);
  machine.set_threads(config_.threads);
  const graph::Partition1D partition =
      graph::Partition1D::block(snap.csr.num_vertices(), machine.num_pes());

  core::AcicEngineOptions options;
  if (plan != nullptr) {
    options.warm_dist = &plan->warm_dist;
    options.seeds = plan->seeds;
  }
  core::AcicEngine engine(machine, snap.csr, partition, state_.source,
                          config_.engine, std::move(options));
  machine.run();
  ACIC_ASSERT_MSG(engine.complete(),
                  "solve did not quiesce (machine drained early)");
  core::AcicRunResult result = engine.collect();

  stats->updates_created = result.lifecycle.created;
  stats->reduction_cycles = result.reduction_cycles;
  total_updates_ += result.lifecycle.created;

  if (plan != nullptr) {
    stats->parents_refreshed =
        refresh_parents(snap, state_.source, state_.dist, result.sssp.dist,
                        plan->affected, &state_.parent);
    ++repairs_;
  } else {
    state_.parent = compute_parents(snap, state_.source, result.sssp.dist);
    stats->parents_refreshed = state_.parent.size();
    ++recomputes_;
  }
  state_.dist = std::move(result.sssp.dist);
  state_.epoch = snap.epoch;
}

}  // namespace acic::dynamic
