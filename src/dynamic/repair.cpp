#include "src/dynamic/repair.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/graph/validate.hpp"
#include "src/util/assert.hpp"
#include "src/util/table.hpp"

namespace acic::dynamic {

using graph::Dist;
using graph::kInfDist;
using graph::kInvalidVertex;
using graph::Neighbor;
using graph::VertexId;

std::vector<EdgeDelta> collapse_mutations(const AppliedMutation* begin,
                                          const AppliedMutation* end) {
  // Group records by (src, dst) preserving log order within a pair; a
  // stable sort keeps first = span-start state, last = span-end state.
  std::vector<const AppliedMutation*> ordered;
  ordered.reserve(static_cast<std::size_t>(end - begin));
  for (const AppliedMutation* m = begin; m != end; ++m) {
    ordered.push_back(m);
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const AppliedMutation* a, const AppliedMutation* b) {
                     if (a->src != b->src) return a->src < b->src;
                     return a->dst < b->dst;
                   });

  std::vector<EdgeDelta> deltas;
  for (std::size_t i = 0; i < ordered.size();) {
    const AppliedMutation& first = *ordered[i];
    std::size_t j = i;
    while (j + 1 < ordered.size() &&
           ordered[j + 1]->src == first.src &&
           ordered[j + 1]->dst == first.dst) {
      ++j;
    }
    const AppliedMutation& last = *ordered[j];
    EdgeDelta delta;
    delta.src = first.src;
    delta.dst = first.dst;
    delta.existed_before = first.kind != MutationKind::kInsert;
    delta.weight_before = first.old_weight;
    delta.exists_after = last.kind != MutationKind::kRemove;
    delta.weight_after = last.new_weight;
    // Drop pairs that net out (e.g. inserted then removed within the
    // span, or reweighted back to the original weight).
    const bool no_change =
        delta.existed_before == delta.exists_after &&
        (!delta.exists_after ||
         delta.weight_before == delta.weight_after);
    if (!no_change) deltas.push_back(delta);
    i = j + 1;
  }
  return deltas;
}

RepairPlan plan_repair(const GraphSnapshot& target, const SsspState& state,
                       std::span<const AppliedMutation> span) {
  const VertexId n = target.csr.num_vertices();
  ACIC_ASSERT_MSG(state.dist.size() == n && state.parent.size() == n,
                  "repair state must cover every vertex");

  RepairPlan plan;
  const std::vector<EdgeDelta> deltas =
      collapse_mutations(span.data(), span.data() + span.size());

  // 1. Invalidation roots: disturbed tree edges.  parent[dst] == src
  //    identifies the (unique, simple graph) tree edge; removal or any
  //    weight increase breaks the witness for the whole subtree below.
  std::vector<VertexId> roots;
  for (const EdgeDelta& d : deltas) {
    if (d.is_removal_or_increase() && state.parent[d.dst] == d.src) {
      roots.push_back(d.dst);
    }
  }

  // 2. Affected set: descendants closure over the parent tree.  The
  //    child lists are materialized only when a root exists — the
  //    common case (no tree edge disturbed) pays nothing here.
  std::vector<bool> affected(n, false);
  if (!roots.empty()) {
    std::vector<std::uint32_t> child_count(n, 0);
    for (VertexId v = 0; v < n; ++v) {
      if (state.parent[v] != kInvalidVertex) ++child_count[state.parent[v]];
    }
    std::vector<std::size_t> child_start(static_cast<std::size_t>(n) + 1, 0);
    for (VertexId v = 0; v < n; ++v) {
      child_start[v + 1] = child_start[v] + child_count[v];
    }
    std::vector<VertexId> children(child_start[n]);
    std::vector<std::size_t> cursor(child_start.begin(),
                                    child_start.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      if (state.parent[v] != kInvalidVertex) {
        children[cursor[state.parent[v]]++] = v;
      }
    }
    std::vector<VertexId> stack;
    for (const VertexId root : roots) {
      if (!affected[root]) {
        affected[root] = true;
        stack.push_back(root);
      }
    }
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      plan.affected.push_back(v);
      for (std::size_t c = child_start[v]; c < child_start[v + 1]; ++c) {
        const VertexId child = children[c];
        if (!affected[child]) {
          affected[child] = true;
          stack.push_back(child);
        }
      }
    }
    std::sort(plan.affected.begin(), plan.affected.end());
  }

  // 3. Warm distances: the surviving state with the affected set reset.
  plan.warm_dist = state.dist;
  for (const VertexId v : plan.affected) plan.warm_dist[v] = kInfDist;

  // 4. Seeds.  Boundary of the affected region: best candidate over
  //    in-edges from unaffected finite vertices (covers pre-existing
  //    and newly inserted edges alike — the reverse CSR is the *new*
  //    graph's).  Then improving inserted/decreased edges whose head is
  //    unaffected.  One seed per vertex, the minimum candidate.
  std::vector<sssp::Update> seeds;
  for (const VertexId v : plan.affected) {
    Dist best = kInfDist;
    for (const Neighbor& in : target.reverse.out_neighbors(v)) {
      if (affected[in.dst]) continue;  // reverse rows store src in .dst
      const Dist du = plan.warm_dist[in.dst];
      if (du == kInfDist) continue;
      best = std::min(best, du + in.weight);
    }
    if (best != kInfDist) seeds.push_back(sssp::Update{v, best});
  }
  for (const EdgeDelta& d : deltas) {
    if (!d.is_insert_or_decrease()) continue;
    if (!plan.affected.empty() && affected[d.dst]) continue;  // seeded above
    if (!plan.affected.empty() && affected[d.src]) continue;
    const Dist du = plan.warm_dist[d.src];
    if (du == kInfDist) continue;
    const Dist cand = du + d.weight_after;
    if (cand < plan.warm_dist[d.dst]) {
      seeds.push_back(sssp::Update{d.dst, cand});
    }
  }
  std::sort(seeds.begin(), seeds.end(),
            [](const sssp::Update& a, const sssp::Update& b) {
              if (a.vertex != b.vertex) return a.vertex < b.vertex;
              return a.dist < b.dist;
            });
  // Keep only the best candidate per vertex.
  for (const sssp::Update& u : seeds) {
    if (plan.seeds.empty() || plan.seeds.back().vertex != u.vertex) {
      plan.seeds.push_back(u);
    }
  }
  return plan;
}

namespace {

/// Canonical witness for one vertex: smallest in-neighbor u (then
/// smallest weight) with dist[u] + w == dist[v]; kInvalidVertex if none.
VertexId witness_of(const GraphSnapshot& snap, VertexId v,
                    const std::vector<Dist>& dist) {
  for (const Neighbor& in : snap.reverse.out_neighbors(v)) {
    // Reverse rows are sorted by (src, weight), so the first match is
    // the canonical witness.
    if (dist[in.dst] != kInfDist && dist[in.dst] + in.weight == dist[v]) {
      return in.dst;
    }
  }
  return kInvalidVertex;
}

}  // namespace

std::vector<VertexId> compute_parents(const GraphSnapshot& snap,
                                      VertexId source,
                                      const std::vector<Dist>& dist) {
  const VertexId n = snap.csr.num_vertices();
  ACIC_ASSERT(dist.size() == n);
  std::vector<VertexId> parents(n, kInvalidVertex);
  for (VertexId v = 0; v < n; ++v) {
    if (v == source || dist[v] == kInfDist) continue;
    parents[v] = witness_of(snap, v, dist);
    ACIC_ASSERT_MSG(parents[v] != kInvalidVertex,
                    "finite distance without a witness in-edge");
  }
  return parents;
}

std::size_t refresh_parents(const GraphSnapshot& snap, VertexId source,
                            const std::vector<Dist>& old_dist,
                            const std::vector<Dist>& new_dist,
                            const std::vector<VertexId>& affected,
                            std::vector<VertexId>* parents) {
  const VertexId n = snap.csr.num_vertices();
  ACIC_ASSERT(old_dist.size() == n && new_dist.size() == n &&
              parents->size() == n);
  std::size_t recomputed = 0;
  auto refresh_one = [&](VertexId v) {
    (*parents)[v] = (v == source || new_dist[v] == kInfDist)
                        ? kInvalidVertex
                        : witness_of(snap, v, new_dist);
    ++recomputed;
  };
  std::vector<bool> done(n, false);
  for (const VertexId v : affected) {
    refresh_one(v);
    done[v] = true;
  }
  for (VertexId v = 0; v < n; ++v) {
    if (!done[v] && old_dist[v] != new_dist[v]) refresh_one(v);
  }
  return recomputed;
}

bool state_is_consistent(const GraphSnapshot& snap, const SsspState& state,
                         std::string* error) {
  const graph::ValidationResult fixed_point =
      graph::validate_sssp(snap.csr, state.source, state.dist);
  if (!fixed_point.ok) {
    if (error != nullptr) *error = fixed_point.error;
    return false;
  }
  const VertexId n = snap.csr.num_vertices();
  if (state.parent.size() != n) {
    if (error != nullptr) *error = "parent vector size mismatch";
    return false;
  }
  for (VertexId v = 0; v < n; ++v) {
    const VertexId p = state.parent[v];
    if (v == state.source || state.dist[v] == kInfDist) {
      if (p != kInvalidVertex) {
        if (error != nullptr) {
          *error = util::strformat("vertex %u should have no parent", v);
        }
        return false;
      }
      continue;
    }
    if (p == kInvalidVertex) {
      if (error != nullptr) {
        *error = util::strformat("reachable vertex %u has no parent", v);
      }
      return false;
    }
    bool witnessed = false;
    for (const Neighbor& nb : snap.csr.out_neighbors(p)) {
      if (nb.dst == v &&
          state.dist[p] + nb.weight == state.dist[v]) {
        witnessed = true;
        break;
      }
    }
    if (!witnessed) {
      if (error != nullptr) {
        *error = util::strformat(
            "parent edge (%u -> %u) is not a witness", p, v);
      }
      return false;
    }
  }
  return true;
}

}  // namespace acic::dynamic
