#pragma once
// Timestamped edge mutations — the write API of the dynamic-graph
// subsystem.
//
// Every solver in this repository historically assumed a frozen Csr;
// production graphs (roads, social, web) mutate continuously.  The unit
// of change here is the *batch*: a set of edge insertions, removals and
// reweights applied atomically as one epoch (SSSP-Del's model — batched
// fully-dynamic updates are both how real feeds arrive and what makes
// incremental repair cheaper than recompute).  Each applied mutation
// receives a deterministic monotone timestamp from the graph's logical
// clock, so two replays of the same stream produce identical logs,
// epochs and snapshots — the determinism tests pin this down.
//
// Semantics (dynamic graphs are *simple*: no self edges, at most one
// edge per (src, dst) pair — graph::validate_csr(require_simple) checks
// this after every epoch in debug builds):
//   * insert(u, v, w)   — adds the edge; if (u, v) already exists this
//     is an upsert and is recorded as a reweight of the existing edge.
//   * remove(u, v)      — deletes the edge; a no-op (counted rejected)
//     if absent.
//   * reweight(u, v, w) — changes the weight; a no-op (counted
//     rejected) if absent — a reweight never creates an edge.
//   * self edges are always rejected.
// Within one batch, later mutations of the same (src, dst) pair win
// (last-writer-wins in submission order), and the collapsed effect is
// what the epoch applies and logs.

#include <cstdint>
#include <vector>

#include "src/graph/types.hpp"

namespace acic::dynamic {

enum class MutationKind : std::uint8_t { kInsert, kRemove, kReweight };

inline const char* mutation_kind_name(MutationKind kind) {
  switch (kind) {
    case MutationKind::kInsert: return "insert";
    case MutationKind::kRemove: return "remove";
    case MutationKind::kReweight: return "reweight";
  }
  return "?";
}

/// One requested edge change.  `weight` is the new weight for insert /
/// reweight and ignored for remove.
struct Mutation {
  MutationKind kind = MutationKind::kInsert;
  graph::VertexId src = 0;
  graph::VertexId dst = 0;
  graph::Weight weight = 0.0;

  static Mutation insert(graph::VertexId u, graph::VertexId v,
                         graph::Weight w) {
    return {MutationKind::kInsert, u, v, w};
  }
  static Mutation remove(graph::VertexId u, graph::VertexId v) {
    return {MutationKind::kRemove, u, v, 0.0};
  }
  static Mutation reweight(graph::VertexId u, graph::VertexId v,
                           graph::Weight w) {
    return {MutationKind::kReweight, u, v, w};
  }
};

using MutationBatch = std::vector<Mutation>;

/// One mutation as actually applied: the collapsed, deduplicated effect
/// on one (src, dst) pair, stamped with the graph's logical clock.  This
/// is the unit of the persistent log (serialization replays it) and of
/// repair planning (old/new weights drive subtree invalidation and the
/// cache staleness tests).
struct AppliedMutation {
  /// Monotone over the whole graph lifetime; unique per applied record.
  std::uint64_t timestamp = 0;
  /// Epoch (batch) this record belongs to; apply() returns it.
  std::uint64_t epoch = 0;
  MutationKind kind = MutationKind::kInsert;
  graph::VertexId src = 0;
  graph::VertexId dst = 0;
  /// Weight before this record (meaningful for remove/reweight).
  graph::Weight old_weight = 0.0;
  /// Weight after this record (meaningful for insert/reweight).
  graph::Weight new_weight = 0.0;
};

/// Per-batch application outcome.
struct ApplyStats {
  std::uint64_t epoch = 0;
  std::size_t inserted = 0;
  std::size_t removed = 0;
  std::size_t reweighted = 0;
  /// Requests that had no effect: remove/reweight of an absent edge,
  /// self edges, and within-batch duplicates superseded by a later
  /// request for the same pair.
  std::size_t rejected = 0;

  std::size_t applied() const { return inserted + removed + reweighted; }
};

/// Net effect of a span of applied records on one (src, dst) pair:
/// edge presence/weight before the first record vs after the last.
/// Multi-epoch repairs collapse the log between two epochs into these
/// (an edge inserted then removed inside the span nets out entirely).
struct EdgeDelta {
  graph::VertexId src = 0;
  graph::VertexId dst = 0;
  bool existed_before = false;
  bool exists_after = false;
  graph::Weight weight_before = 0.0;
  graph::Weight weight_after = 0.0;

  bool is_removal_or_increase() const {
    return existed_before &&
           (!exists_after || weight_after > weight_before);
  }
  bool is_insert_or_decrease() const {
    return exists_after &&
           (!existed_before || weight_after < weight_before);
  }
};

/// Collapses an ordered span of applied records (oldest first) into one
/// EdgeDelta per touched (src, dst) pair, sorted by (src, dst).  The
/// span must be contiguous in the log: the first record for a pair then
/// carries the pair's state at the span start, the last its state at
/// the span end.
std::vector<EdgeDelta> collapse_mutations(
    const AppliedMutation* begin, const AppliedMutation* end);

}  // namespace acic::dynamic
