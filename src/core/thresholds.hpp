#pragma once
// Threshold selection — Algorithm 1 of the paper, run at the root PE on
// the globally-summed histogram after every reduction.
//
// Two thresholds are produced, each a histogram bucket index:
//   * t_tram — updates in buckets <= t_tram may be handed to tramlib for
//     sending; higher-distance updates wait in the sender-side tram_hold.
//   * t_pq   — accepted updates in buckets <= t_pq enter the receiver's
//     priority queue immediately; the rest wait in pq_hold.
// When few updates are active (<= low_activity_factor * |PE|, the
// paper's 100·|PE| rule) parallelism is scarce, so both thresholds open
// fully (the top bucket) and everything flows.  Otherwise each threshold
// is the bucket at which a user-supplied fraction (p_tram / p_pq) of the
// active-update mass is covered, walking from the lowest bucket.

#include <cstdint>
#include <vector>

#include "src/util/assert.hpp"

namespace acic::core {

struct Thresholds {
  std::size_t t_tram = 0;
  std::size_t t_pq = 0;
};

/// The `bucket(p)` walk of Algorithm 1: smallest bucket index at which
/// the cumulative count reaches `fraction` of `total`.  `fraction` is in
/// (0, 1]; a histogram whose mass is entirely in one bucket returns that
/// bucket.  `total` must be the sum of `histogram`.
std::size_t bucket_at_fraction(const std::vector<double>& histogram,
                               double fraction, double total);

struct ThresholdPolicy {
  double p_tram = 0.999;
  double p_pq = 0.05;
  /// The "low activity" cutoff multiplier (paper: 100 updates per PE).
  std::uint64_t low_activity_factor = 100;
};

/// Computes both thresholds from the global histogram (Algorithm 1,
/// lines 7–17).
Thresholds compute_thresholds(const std::vector<double>& global_histogram,
                              std::uint32_t num_pes,
                              const ThresholdPolicy& policy);

/// The future-work threshold function (§V): instead of Algorithm 1's
/// two-tier percentile rule, derive each threshold from a *work window*
/// — the smallest bucket prefix holding enough updates to keep every PE
/// busy (window_per_pe updates each).  This uses both the count and the
/// shape of the histogram: concentrated-low distributions get tight
/// thresholds, flat ones open wider, and low activity degenerates to the
/// top bucket without a separate special case.
struct WorkWindowPolicy {
  /// Updates per PE the pq prefix should cover (≈ a few drain batches).
  std::uint64_t pq_window_per_pe = 128;
  /// Updates per PE allowed into the send path; larger than the pq
  /// window so the network pipeline stays fed.
  std::uint64_t tram_window_per_pe = 1024;
};

Thresholds compute_thresholds_work_window(
    const std::vector<double>& global_histogram, std::uint32_t num_pes,
    const WorkWindowPolicy& policy);

/// Which threshold function ACIC uses each reduction cycle.
enum class ThresholdPolicyKind {
  kTwoTier,     // the paper's Algorithm 1
  kWorkWindow,  // the future-work shape-aware function above
};

}  // namespace acic::core
