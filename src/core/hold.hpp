#pragma once
// Bucketed hold structures: tram_hold (sender side) and pq_hold
// (receiver side), paper §II.C.
//
// A hold is an array of per-bucket lists.  Updates above the current
// threshold wait here; when a broadcast raises the threshold, the
// release() call drains all buckets up to the new threshold *in
// increasing bucket order*, so the lowest-distance updates move first —
// the paper calls this out explicitly for tram_hold.

#include <cstdint>
#include <vector>

#include "src/sssp/update.hpp"
#include "src/util/assert.hpp"

namespace acic::core {

/// Templated on the held record so engines that carry extra per-update
/// state (the batched multi-source engine's lane tag rides inside its
/// 16-byte UpdateMsg) can hold it without re-deriving it on release.
template <class UpdateT = sssp::Update>
class BucketedHoldT {
 public:
  explicit BucketedHoldT(std::size_t num_buckets)
      : buckets_(num_buckets) {}

  void put(std::size_t bucket, const UpdateT& update) {
    ACIC_HOT_ASSERT(bucket < buckets_.size());
    std::vector<UpdateT>& list = buckets_[bucket];
    // Holds fill in bursts between broadcasts; a modest first-touch
    // reservation skips the doubling cascade (capacity survives the
    // clear() in release_up_to, so this runs once per bucket).
    if (list.capacity() == 0) list.reserve(16);
    list.push_back(update);
    ++size_;
  }

  /// Moves every held update in buckets [0, threshold] into `out`, lowest
  /// bucket first (and FIFO within a bucket).
  void release_up_to(std::size_t threshold,
                     std::vector<UpdateT>* out) {
    const std::size_t last = std::min(threshold, buckets_.size() - 1);
    for (std::size_t b = 0; b <= last; ++b) {
      if (buckets_[b].empty()) continue;
      size_ -= buckets_[b].size();
      out->insert(out->end(), buckets_[b].begin(), buckets_[b].end());
      buckets_[b].clear();
    }
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  std::size_t bucket_size(std::size_t bucket) const {
    ACIC_ASSERT(bucket < buckets_.size());
    return buckets_[bucket].size();
  }

 private:
  std::vector<std::vector<UpdateT>> buckets_;
  std::size_t size_ = 0;
};

/// The common single-source shape: holds plain wire updates.
using BucketedHold = BucketedHoldT<sssp::Update>;

}  // namespace acic::core
