#include "src/core/acic.hpp"

#include <memory>
#include <algorithm>
#include <deque>
#include <span>
#include <utility>

#include "src/core/histogram.hpp"
#include "src/core/hold.hpp"
#include "src/graph/ooc_prefetch.hpp"
#include "src/runtime/collectives.hpp"
#include "src/runtime/speculation.hpp"
#include "src/sssp/update.hpp"
#include "src/tram/tram.hpp"
#include "src/util/assert.hpp"
#include "src/util/dary_heap.hpp"
#include "src/util/prefetch.hpp"

namespace acic::core {

using graph::Dist;
using graph::VertexId;
using runtime::Pe;
using runtime::PeId;
using sssp::Update;

namespace {

/// The in-flight form of an update inside this engine: the wire pair
/// (vertex, dist) plus a meta word — the distance's histogram bucket
/// (low 24 bits, computed once at creation time and carried along) and
/// the distance lane (high 8 bits; always 0 outside batched multi-source
/// runs).  Every PE buckets with the same width, so the receiver-side
/// bucket is identical — carrying it replaces an fp divide per delivery,
/// per pq pop and per expansion.  The meta word packs into Update's
/// existing alignment padding: sizeof(UpdateMsg) == sizeof(Update), so
/// tram buffer footprints are unchanged (and the simulated wire size
/// comes from TramConfig::item_bytes regardless).
constexpr std::uint32_t kLaneShift = 24;
constexpr std::uint32_t kBucketMask = (1u << kLaneShift) - 1;
constexpr std::size_t kMaxLanes = 256;  // 32 - kLaneShift tag bits

struct UpdateMsg {
  VertexId vertex = 0;
  std::uint32_t meta = 0;  // bucket | lane << kLaneShift
  Dist dist = 0.0;
};
static_assert(sizeof(UpdateMsg) == sizeof(Update));

inline std::uint32_t make_meta(std::size_t bucket, std::uint32_t lane) {
  ACIC_HOT_ASSERT(bucket <= kBucketMask);
  return static_cast<std::uint32_t>(bucket) | (lane << kLaneShift);
}
inline std::size_t bucket_of(const UpdateMsg& u) {
  return u.meta & kBucketMask;
}
inline std::uint32_t lane_of(const UpdateMsg& u) {
  return u.meta >> kLaneShift;
}

/// Same ordering as sssp::UpdateMinOrder on the (dist, vertex) key, with
/// the meta word as the final tie-break: equal distances mean equal
/// buckets (the bucket is a function of dist), so the meta comparison
/// reduces to the lane — single-lane pop order is bit-identical to the
/// pre-lane engine, and multi-lane ties between distinct queries resolve
/// deterministically by lane index.
struct UpdateMsgMinOrder {
  bool operator()(const UpdateMsg& a, const UpdateMsg& b) const {
    if (a.dist != b.dist) return a.dist > b.dist;
    if (a.vertex != b.vertex) return a.vertex > b.vertex;
    return a.meta > b.meta;
  }
};

/// Per-PE algorithm state.  Only tasks running on the owning PE touch it
/// (message-passing discipline; the simulation is single-threaded but the
/// code is written as if each PE were a separate address space).
struct PeState {
  VertexId first = 0;  // owned vertex range [first, last)
  VertexId last = 0;
  std::size_t width = 0;   // last - first, hoisted for lane indexing
  /// Lane-major distance slots: lanes × width, indexed by
  /// (lane * width + (v - first)).  Single-lane runs see the exact
  /// pre-lane layout (lane 0 at offset 0).
  std::vector<Dist> dist;

  // By value (not unique_ptr): bucketing touches it once per
  // created and once per processed update, so the extra pointer
  // chase was visible at wall-clock scale.
  UpdateHistogram histogram{1, 1.0, 1};
  /// Holds keep the full UpdateMsg so the lane tag (and the
  /// creation-time bucket) survive the wait; releases re-emit the held
  /// message verbatim, which equals the old recompute bit-for-bit
  /// because the bucket is a pure function of the distance.
  BucketedHoldT<UpdateMsg> tram_hold{1};
  BucketedHoldT<UpdateMsg> pq_hold{1};
  /// 4-ary min-heap of pending expansions (pop order identical to the
  /// former std::priority_queue: the order ties only between
  /// bit-identical updates).  reserve() keeps steady-state push/pop off
  /// the allocator.
  util::DaryHeap<UpdateMsg, UpdateMsgMinOrder> pq;

  std::size_t t_tram = 0;
  std::size_t t_pq = 0;
  /// Lowest globally non-empty histogram bucket (from the last
  /// broadcast); vertices with distances in strictly lower buckets are
  /// provably final (non-negative weights).
  std::size_t lowest_active_bucket = 0;

  std::uint64_t created = 0;
  std::uint64_t processed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t superseded = 0;
  std::uint64_t touched = 0;

  // Lifecycle stage counters (fig. 2).
  std::uint64_t sent_directly = 0;
  std::uint64_t held_in_tram = 0;
  std::uint64_t entered_pq_directly = 0;
  std::uint64_t held_in_pq_hold = 0;
  std::uint64_t expanded = 0;

  /// Reusable contribution payload (histogram counts + 3 scalars).
  std::vector<double> payload_scratch;
  /// Reusable hold-release scratch for on_broadcast (per-PE, not shared:
  /// under the parallel engine broadcasts on different nodes run
  /// concurrently).
  std::vector<UpdateMsg> release_scratch;

  bool terminated = false;
};

/// A stolen expansion chunk waiting on a process's shared work queue:
/// relax edges [begin, end) of `vertex` at distance `dist` on behalf of
/// the lane packed in `meta` (alongside the histogram bucket of `dist`).
struct StealChunk {
  VertexId vertex = 0;
  Dist dist = 0.0;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::uint32_t meta = 0;
};

}  // namespace

class AcicEngine::Impl : public runtime::Snapshotable {
 public:
  Impl(runtime::Machine& machine, const graph::Csr& csr,
       const graph::Partition1D& partition, VertexId source,
       const AcicConfig& config, AcicEngineOptions options)
      : machine_(machine),
        csr_(csr),
        partition_(partition),
        source_(source),
        config_(config),
        options_(std::move(options)),
        pes_(machine.num_pes()) {
    ACIC_ASSERT_MSG(partition.num_parts() == machine.num_pes(),
                    "partition parts must equal worker PE count");
    ACIC_ASSERT(source < csr.num_vertices());

    ACIC_ASSERT_MSG(options_.warm_dist == nullptr ||
                        options_.warm_dist->size() == csr.num_vertices(),
                    "warm_dist must cover every vertex");
    if (!options_.sources.empty()) {
      ACIC_ASSERT_MSG(options_.sources.size() <= kMaxLanes,
                      "at most 256 lanes (8-bit lane tag)");
      ACIC_ASSERT_MSG(options_.sources.front() == source,
                      "sources[0] must equal the primary source");
      ACIC_ASSERT_MSG(options_.warm_dist == nullptr,
                      "multi-source lanes and warm start are exclusive");
      ACIC_ASSERT_MSG(!config_.use_vertex_termination,
                      "vertex termination is single-source only");
      ACIC_ASSERT(config_.num_buckets <= kBucketMask + 1);
      for (const VertexId s : options_.sources) {
        ACIC_ASSERT(s < csr.num_vertices());
      }
      num_lanes_ = static_cast<std::uint32_t>(options_.sources.size());
    }
    for (PeId p = 0; p < machine_.num_pes(); ++p) {
      PeState& state = pes_[p];
      state.first = partition.begin(p);
      state.last = partition.end(p);
      state.width = state.last - state.first;
      if (options_.warm_dist != nullptr) {
        state.dist.assign(
            options_.warm_dist->begin() + state.first,
            options_.warm_dist->begin() + state.last);
      } else {
        state.dist.assign(state.width * num_lanes_, graph::kInfDist);
      }
      state.histogram = UpdateHistogram(
          config_.num_buckets, config_.bucket_width, csr.num_vertices());
      state.tram_hold = BucketedHoldT<UpdateMsg>(config_.num_buckets);
      state.pq_hold = BucketedHoldT<UpdateMsg>(config_.num_buckets);
      state.pq.reserve(std::min<std::size_t>(
          state.last - state.first, 4096));
      // Before the first broadcast the activity is trivially low, so the
      // thresholds start fully open (Algorithm 1's low-activity branch).
      state.t_tram = config_.num_buckets - 1;
      state.t_pq = config_.num_buckets - 1;
    }

    if (config_.registry != nullptr) {
      obs::Registry& reg = *config_.registry;
      obs_t_tram_ = reg.series("acic/t_tram");
      obs_t_pq_ = reg.series("acic/t_pq");
      obs_active_updates_ = reg.series("acic/active_updates");
      obs_histogram_ = reg.histogram_series("acic/update_histogram");
      obs_held_tram_ = reg.counter("acic/updates_held_tram");
      obs_released_tram_ = reg.counter("acic/updates_released_tram");
      obs_held_pq_ = reg.counter("acic/updates_held_pq");
      obs_released_pq_ = reg.counter("acic/updates_released_pq");
      // The engine's tram reports to the same registry unless the caller
      // already pointed it elsewhere.
      if (config_.tram.registry == nullptr) {
        config_.tram.registry = config_.registry;
      }
    }

    tram_ = std::make_unique<UpdateTram>(machine_, config_.tram,
                                         Deliver{this});

    node_term_.resize(machine_.topology().nodes);
    pes_per_node_ = machine_.num_pes() / machine_.topology().nodes;
    spec_ckpt_.resize(machine_.topology().nodes);
    machine_.add_snapshotable(this);

    build_reducer();

    steal_queues_.resize(machine_.topology().num_procs());
    idle_handler_ids_.reserve(machine_.num_pes());
    for (PeId p = 0; p < machine_.num_pes(); ++p) {
      // add (not set): concurrent queries each register their own drain
      // and the machine polls them round-robin (src/server/ relies on
      // this to multiplex engines on shared PEs).
      idle_handler_ids_.push_back(machine_.add_idle_handler(
          p, [this](Pe& pe) {
            // Pull-based stealing first (shared process queue), then the
            // PE's own priority queue.
            return drain_steal_queue(pe) || drain_pq(pe);
          }));
    }

    // Inject the initial updates before the first contributions are
    // scheduled so the initial reduction can never observe a spurious
    // created == processed (a cold run terminating at 0 == 0 before the
    // source update lands would be wrong; a warm run with no seeds is
    // *correctly* quiescent, so its empty injection is fine).
    const runtime::SimTime start = options_.start_time_us;
    if (options_.warm_dist != nullptr) {
      // Warm start: inject the repair seeds, grouped by owner so each
      // owner creates its seeds in vector order — one deterministic
      // schedule regardless of how many seeds a repair produced.
      std::vector<std::vector<Update>> by_owner(machine_.num_pes());
      for (const Update& seed : options_.seeds) {
        ACIC_ASSERT(seed.vertex < csr.num_vertices());
        by_owner[partition_.owner(seed.vertex)].push_back(seed);
      }
      for (PeId p = 0; p < machine_.num_pes(); ++p) {
        if (by_owner[p].empty()) continue;
        machine_.schedule_at(
            start, p, [this, seeds = std::move(by_owner[p])](Pe& pe) {
              for (const Update& seed : seeds) {
                create_update(pe, seed.vertex, seed.dist, /*lane=*/0);
              }
            });
      }
    } else if (num_lanes_ > 1) {
      // Batched multi-source: every lane's (source, 0) seed, grouped by
      // owner in lane order — one deterministic schedule per batch
      // regardless of where the sources live.
      struct LaneSeed {
        VertexId vertex;
        std::uint32_t lane;
      };
      std::vector<std::vector<LaneSeed>> by_owner(machine_.num_pes());
      for (std::uint32_t lane = 0; lane < num_lanes_; ++lane) {
        const VertexId s = options_.sources[lane];
        by_owner[partition_.owner(s)].push_back(LaneSeed{s, lane});
      }
      for (PeId p = 0; p < machine_.num_pes(); ++p) {
        if (by_owner[p].empty()) continue;
        machine_.schedule_at(
            start, p, [this, seeds = std::move(by_owner[p])](Pe& pe) {
              for (const LaneSeed& seed : seeds) {
                create_update(pe, seed.vertex, 0.0, seed.lane);
              }
            });
      }
    } else {
      const PeId source_owner = partition_.owner(source_);
      machine_.schedule_at(start, source_owner, [this](Pe& pe) {
        create_update(pe, source_, 0.0, /*lane=*/0);
      });
    }
    for (PeId p = 0; p < machine_.num_pes(); ++p) {
      machine_.schedule_at(start, p, [this](Pe& pe) { contribute(pe); });
    }
  }

  ~Impl() override {
    machine_.remove_snapshotable(this);
    for (PeId p = 0; p < machine_.num_pes(); ++p) {
      machine_.remove_idle_handler(p, idle_handler_ids_[p]);
    }
  }

  // ---- optimistic-engine hooks (runtime::Snapshotable) ------------------
  // Snapshot for simulated node `n`: the node's PeStates (distance lanes,
  // histogram, holds, pq, thresholds, counters), its retirement counter,
  // the shared steal queues of the node's processes (a process never
  // spans nodes), and — on node 0, where the root PE lives — the
  // root-side termination history, the nodes_done count and the
  // append-only histogram snapshot log (checkpointed by length, truncated
  // on rollback).  The engine's tram and reducer snapshot themselves.
  std::size_t speculative_checkpoint(std::uint32_t n) override {
    const runtime::Topology& topo = machine_.topology();
    NodeCkpt& ck = spec_ckpt_[n];
    ck.pes.clear();
    std::size_t bytes = 0;
    for (PeId p = 0; p < machine_.num_pes(); ++p) {
      if (topo.node_of(p) != n) continue;
      ck.pes.push_back(pes_[p]);
      bytes += sizeof(PeState) + pes_[p].dist.size() * sizeof(Dist) +
               (pes_[p].pq.size() + pes_[p].tram_hold.size() +
                pes_[p].pq_hold.size()) *
                   sizeof(UpdateMsg) +
               pes_[p].histogram.counts().size() * sizeof(std::int64_t);
    }
    ck.steal_queues.clear();
    for (std::uint32_t proc = 0; proc < topo.num_procs(); ++proc) {
      if (topo.node_of(topo.first_pe_of_proc(proc)) != n) continue;
      ck.steal_queues.push_back(steal_queues_[proc]);
      bytes += steal_queues_[proc].size() * sizeof(StealChunk);
    }
    ck.node_term = node_term_[n].terminated;
    if (n == 0) {
      ck.nodes_done = nodes_done_;
      ck.root_armed = root_armed_;
      ck.root_last_created = root_last_created_;
      ck.snapshots_size = snapshots_.size();
    }
    bytes += tram_->speculative_checkpoint(n);
    bytes += reducer_->speculative_checkpoint(n);
    return bytes;
  }

  void speculative_restore(std::uint32_t n) override {
    const runtime::Topology& topo = machine_.topology();
    NodeCkpt& ck = spec_ckpt_[n];
    std::size_t i = 0;
    for (PeId p = 0; p < machine_.num_pes(); ++p) {
      if (topo.node_of(p) != n) continue;
      pes_[p] = ck.pes[i++];
    }
    ACIC_ASSERT(i == ck.pes.size());
    i = 0;
    for (std::uint32_t proc = 0; proc < topo.num_procs(); ++proc) {
      if (topo.node_of(topo.first_pe_of_proc(proc)) != n) continue;
      steal_queues_[proc] = ck.steal_queues[i++];
    }
    node_term_[n].terminated = ck.node_term;
    if (n == 0) {
      nodes_done_ = ck.nodes_done;
      root_armed_ = ck.root_armed;
      root_last_created_ = ck.root_last_created;
      snapshots_.resize(ck.snapshots_size);
    }
    tram_->speculative_restore(n);
    reducer_->speculative_restore(n);
    ck.pes.clear();
    ck.steal_queues.clear();
  }

  void speculative_commit(std::uint32_t n) override {
    tram_->speculative_commit(n);
    reducer_->speculative_commit(n);
    spec_ckpt_[n].pes.clear();
    spec_ckpt_[n].steal_queues.clear();
  }

  bool complete() const {
    return nodes_done_ == machine_.topology().nodes;
  }
  VertexId source() const { return source_; }

  AcicRunResult collect() const {
    AcicRunResult result;
    result.reduction_cycles = reducer_->cycles_completed();
    result.histograms = snapshots_;

    result.sssp.dist.assign(csr_.num_vertices(), graph::kInfDist);
    if (!options_.sources.empty()) {
      result.lane_dist.assign(
          num_lanes_,
          std::vector<Dist>(csr_.num_vertices(), graph::kInfDist));
      for (const PeState& state : pes_) {
        for (std::uint32_t lane = 0; lane < num_lanes_; ++lane) {
          std::copy(state.dist.begin() + lane * state.width,
                    state.dist.begin() + (lane + 1) * state.width,
                    result.lane_dist[lane].begin() + state.first);
        }
      }
    }
    for (const PeState& state : pes_) {
      std::copy(state.dist.begin(), state.dist.begin() + state.width,
                result.sssp.dist.begin() + state.first);
      result.sssp.metrics.updates_created += state.created;
      result.sssp.metrics.updates_processed += state.processed;
      result.sssp.metrics.updates_rejected += state.rejected;
      result.sssp.metrics.updates_superseded += state.superseded;
      result.sssp.metrics.vertices_touched += state.touched;
      result.lifecycle.created += state.created;
      result.lifecycle.sent_directly += state.sent_directly;
      result.lifecycle.held_in_tram += state.held_in_tram;
      result.lifecycle.rejected_on_arrival += state.rejected;
      result.lifecycle.entered_pq_directly += state.entered_pq_directly;
      result.lifecycle.held_in_pq_hold += state.held_in_pq_hold;
      result.lifecycle.superseded_in_pq += state.superseded;
      result.lifecycle.expanded += state.expanded;
    }
    result.sssp.metrics.collective_cycles = reducer_->cycles_completed();
    return result;
  }

 private:
  /// Concrete (non-type-erased) delivery functor handed to the tram, so
  /// deliver_batch's per-item dispatch inlines straight into on_deliver.
  struct Deliver {
    Impl* impl;
    void operator()(Pe& pe, const UpdateMsg& u) const {
      impl->on_deliver(pe, u);
    }
    /// Lets the tram store bare 16-byte UpdateMsgs (no per-entry target
    /// field): an update's destination is always its vertex's owner, and
    /// owner() on the uniform block partition is a shift.
    PeId target_of(const UpdateMsg& u) const {
      return impl->partition_.owner(u.vertex);
    }
    /// Called by deliver_batch a few items ahead of dispatch: warm the
    /// distance slot on_deliver will compare against and the CSR offsets
    /// entry a subsequent expansion reads first.  Hint only — the
    /// simulation is bit-identical with or without it.
    void prefetch(Pe& pe, const UpdateMsg& u) const {
      const PeState& state = impl->pes_[pe.id()];
      util::prefetch_read(state.dist.data() + lane_of(u) * state.width +
                          (u.vertex - state.first));
      util::prefetch_read(impl->csr_.offsets().data() + u.vertex);
    }
  };
  using UpdateTram = tram::Tram<UpdateMsg, Deliver>;

  PeState& state_of(const Pe& pe) { return pes_[pe.id()]; }

  // ---- update lifecycle -------------------------------------------------

  /// Creates update (target, d) on `lane`: counts it, adds it to the
  /// local histogram and routes it through the tram threshold (paper
  /// fig. 2, green "create" block).
  void create_update(Pe& pe, VertexId target, Dist d, std::uint32_t lane) {
    create_update(pe, state_of(pe), target, d, lane);
  }

  /// Overload taking the already-resolved PE state: expand's inner loop
  /// calls this once per out-edge.
  void create_update(Pe& pe, PeState& state, VertexId target, Dist d,
                     std::uint32_t lane) {
    ++state.created;
    const std::size_t bucket = state.histogram.bucket_of(d);
    state.histogram.increment(bucket);
    if (!config_.use_tram_hold || bucket <= state.t_tram) {
      ++state.sent_directly;
      tram_->insert(pe, partition_.owner(target),
                    UpdateMsg{target, make_meta(bucket, lane), d});
    } else {
      ++state.held_in_tram;
      state.tram_hold.put(bucket,
                          UpdateMsg{target, make_meta(bucket, lane), d});
      if (config_.registry != nullptr) {
        config_.registry->add(obs_held_tram_, pe.id(), 1, pe.now());
      }
    }
  }

  /// Publishes a vertex whose adjacency row is about to be needed to the
  /// out-of-core prefetcher feed, if one is attached.  Lock-free,
  /// drop-on-full, zero simulated cost — cannot affect results.
  void feed_frontier(VertexId v) {
    if (config_.frontier_feed != nullptr) {
      config_.frontier_feed->try_publish(v);
    }
  }

  /// An update arrived at the owner of its vertex (purple "process
  /// arrival" block).  Better distances are applied immediately; the
  /// expansion is deferred through pq so a still-better update can
  /// supersede it (the paper's optimal-update generation).
  void on_deliver(Pe& pe, const UpdateMsg& u) {
    PeState& state = state_of(pe);
    const std::size_t bucket = bucket_of(u);
    if (state.terminated) {
      // Early termination declared: every reachable vertex is final, so
      // any straggler update is by definition rejectable.
      mark_processed_bucket(state, bucket);
      ++state.rejected;
      return;
    }
    pe.charge(config_.costs.update_apply_us);
    ACIC_HOT_ASSERT(u.vertex >= state.first && u.vertex < state.last);
    const std::size_t slot =
        lane_of(u) * state.width + (u.vertex - state.first);

    // The update carries its creation-time bucket: the same value serves
    // the rejection decrement and the pq/hold routing below.
    if (u.dist >= state.dist[slot]) {
      mark_processed_bucket(state, bucket);
      ++state.rejected;
      return;
    }
    if (state.dist[slot] == graph::kInfDist) ++state.touched;
    state.dist[slot] = u.dist;

    if (!config_.use_pq) {
      expand(pe, u);  // baseline behaviour: relax out-edges immediately
      return;
    }
    if (!config_.use_pq_hold || bucket <= state.t_pq) {
      ++state.entered_pq_directly;
      pe.charge(config_.costs.pq_op_us);
      state.pq.push(u);
    } else {
      ++state.held_in_pq_hold;
      state.pq_hold.put(bucket, u);
      if (config_.registry != nullptr) {
        config_.registry->add(obs_held_pq_, pe.id(), 1, pe.now());
      }
    }
    // Either way this vertex's row will be walked once the update
    // surfaces: peek point for the out-of-core page prefetcher (host
    // side, best effort, no simulated cost).
    feed_frontier(u.vertex);
  }

  /// Idle-time drain: pop improving updates in increasing distance order
  /// and expand only those still current (dist(v) == d).
  bool drain_pq(Pe& pe) {
    PeState& state = state_of(pe);
    bool any = false;
    for (std::size_t i = 0;
         i < config_.pq_drain_batch && !state.pq.empty(); ++i) {
      pe.charge(config_.costs.pq_op_us);
      const UpdateMsg u = state.pq.pop_top();
      // The heap's new top is almost always the next pop of this batch:
      // start its distance-slot and CSR-row loads now, behind the
      // expansion of u below (PrefEdge-style lookahead-1).
      if (!state.pq.empty()) {
        const UpdateMsg& ahead = state.pq.top();
        util::prefetch_read(state.dist.data() +
                            lane_of(ahead) * state.width +
                            (ahead.vertex - state.first));
        util::prefetch_read(csr_.offsets().data() + ahead.vertex);
      }
      any = true;
      const std::size_t slot =
          lane_of(u) * state.width + (u.vertex - state.first);
      if (state.dist[slot] == u.dist) {
        expand(pe, u);
      } else {
        // A better update arrived while this one sat in pq: it is wasted.
        mark_processed_bucket(state, bucket_of(u));
        ++state.superseded;
      }
    }
    return any;
  }

  /// Relaxes every out-edge of u.vertex at distance u.dist, then marks u
  /// processed.  High-degree vertices may be stolen: the edge range is
  /// split across the process's worker PEs, which relax their chunks
  /// against the shared-memory CSR (future work §V).
  void expand(Pe& pe, const UpdateMsg& u) {
    const auto row = csr_.out_neighbors(u.vertex);
    const std::uint32_t workers =
        machine_.topology().pes_per_proc;
    if (config_.hub_split_degree != 0 && machine_.num_pes() > 1 &&
        row.size() >= config_.hub_split_degree) {
      expand_hub_split(pe, u, row);
    } else if (config_.steal_threshold_degree != 0 && workers > 1 &&
               row.size() >= config_.steal_threshold_degree) {
      expand_stolen(pe, u, row);
    } else {
      PeState& state = state_of(pe);
      const runtime::SimTime relax_us = config_.costs.edge_relax_us;
      const std::uint32_t lane = lane_of(u);
      for (const graph::Neighbor& nb : row) {
        pe.charge(relax_us);
        create_update(pe, state, nb.dst, u.dist + nb.weight, lane);
      }
    }
    PeState& state = state_of(pe);
    ++state.expanded;
    mark_processed_bucket(state, bucket_of(u));
  }

  /// Work-stealing expansion: split the row into chunks on the shared
  /// per-process work queue; whichever process PE goes idle first pulls
  /// and relaxes them.  Each chunk is itself accounted as an update
  /// (created here, processed by the puller) so the quiescence counters
  /// observe in-flight chunks.
  void expand_stolen(Pe& pe, const UpdateMsg& u,
                     std::span<const graph::Neighbor> row) {
    PeState& owner = state_of(pe);
    const runtime::Topology& topo = machine_.topology();
    const std::uint32_t proc = topo.proc_of(pe.id());
    const std::size_t request_bucket = bucket_of(u);

    std::size_t begin = 0;
    while (begin < row.size()) {
      const std::size_t end =
          std::min(begin + config_.steal_chunk_edges, row.size());
      ++owner.created;
      owner.histogram.increment(request_bucket);
      pe.charge(config_.steal_queue_op_us);
      steal_queues_[proc].push_back(
          StealChunk{u.vertex, u.dist, begin, end, u.meta});
      begin = end;
    }

    // Wake sleeping siblings: an empty message lands in their task
    // queue, after which their idle handler finds the shared queue.
    const PeId first = topo.first_pe_of_proc(proc);
    for (std::uint32_t w = 0; w < topo.pes_per_proc; ++w) {
      const PeId sibling = first + w;
      if (sibling != pe.id()) {
        pe.send(sibling, 8, [](Pe&) {});
      }
    }
  }

  /// 1.5-D-style hub split: scatter the hub's edge chunks round-robin
  /// across every worker PE; each recipient relaxes its chunk against
  /// the shared CSR (the graph is replicated read-only in the
  /// simulation, standing in for a 1.5-D edge distribution).  Chunks
  /// are accounted exactly like stolen chunks.
  void expand_hub_split(Pe& pe, const UpdateMsg& u,
                        std::span<const graph::Neighbor> row) {
    PeState& owner = state_of(pe);
    const std::size_t request_bucket = bucket_of(u);
    const std::uint32_t lane = lane_of(u);
    const std::uint32_t pes = machine_.num_pes();
    const std::size_t chunk_len =
        std::max<std::size_t>(config_.steal_chunk_edges,
                              (row.size() + pes - 1) / pes);

    std::size_t begin = 0;
    std::uint32_t next = pe.id();
    while (begin < row.size()) {
      const std::size_t end = std::min(begin + chunk_len, row.size());
      ++owner.created;
      owner.histogram.increment(request_bucket);

      const PeId target = next % pes;
      next = target + 1;
      auto relax_chunk = [this, d = u.dist, request_bucket, lane, begin,
                          end, vertex = u.vertex](Pe& worker) {
        const auto chunk_row = csr_.out_neighbors(vertex);
        for (std::size_t i = begin; i < end; ++i) {
          worker.charge(config_.costs.edge_relax_us);
          create_update(worker, chunk_row[i].dst,
                        d + chunk_row[i].weight, lane);
        }
        PeState& state = state_of(worker);
        ++state.processed;
        state.histogram.decrement(request_bucket);
      };
      if (target == pe.id()) {
        relax_chunk(pe);
      } else {
        pe.send(target, 24, std::move(relax_chunk));
      }
      begin = end;
    }
  }

  /// Pulls up to one chunk from this process's shared work queue and
  /// relaxes it.  Returns true if a chunk was processed.
  bool drain_steal_queue(Pe& pe) {
    if (config_.steal_threshold_degree == 0) return false;
    auto& queue = steal_queues_[machine_.topology().proc_of(pe.id())];
    if (queue.empty()) return false;
    pe.charge(config_.steal_queue_op_us);
    const StealChunk chunk = queue.front();
    queue.pop_front();
    const auto row = csr_.out_neighbors(chunk.vertex);
    const std::uint32_t lane = chunk.meta >> kLaneShift;
    for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
      pe.charge(config_.costs.edge_relax_us);
      create_update(pe, row[i].dst, chunk.dist + row[i].weight, lane);
    }
    PeState& state = state_of(pe);
    ++state.processed;
    state.histogram.decrement(chunk.meta & kBucketMask);
    return true;
  }

  /// Every caller carries the creation-time bucket in its UpdateMsg meta
  /// word (the bucket_of divide once per update was visible at
  /// wall-clock scale), so processing never re-buckets.
  void mark_processed_bucket(PeState& state, std::size_t bucket) {
    ++state.processed;
    state.histogram.decrement(bucket);
  }

  // ---- introspection cycle ----------------------------------------------

  std::size_t payload_width() const { return config_.num_buckets + 3; }

  void contribute(Pe& pe) {
    PeState& state = state_of(pe);
    if (state.terminated) return;
    // Reused per-PE scratch: contribute runs every reduction cycle and
    // the Reducer only reads the payload during the call.
    std::vector<double>& payload = state.payload_scratch;
    payload.clear();
    payload.reserve(payload_width());
    state.histogram.append_to(&payload);
    payload.push_back(static_cast<double>(state.created));
    payload.push_back(static_cast<double>(state.processed));
    payload.push_back(
        static_cast<double>(count_finalized(pe, state)));
    reducer_->contribute(pe, payload);
  }

  /// Counts owned vertices whose distance is provably final: finite and
  /// in a bucket strictly below the lowest globally active bucket
  /// (paper's abandoned early-termination metric; only computed when the
  /// feature is enabled).
  std::uint64_t count_finalized(Pe& pe, const PeState& state) {
    if (!config_.use_vertex_termination) return 0;
    pe.charge(config_.finalize_scan_us_per_vertex *
              static_cast<double>(state.dist.size()));
    std::uint64_t finalized = 0;
    for (const Dist d : state.dist) {
      if (d != graph::kInfDist &&
          state.histogram.bucket_of(d) < state.lowest_active_bucket) {
        ++finalized;
      }
    }
    return finalized;
  }

  void build_reducer() {
    reducer_ = std::make_unique<runtime::Reducer>(
        machine_, payload_width(),
        [this](Pe& pe, std::uint64_t cycle,
               const std::vector<double>& sum)
            -> std::optional<std::vector<double>> {
          return on_root(pe, cycle, sum);
        },
        [this](Pe& pe, std::uint64_t cycle,
               const std::vector<double>& payload) {
          on_broadcast(pe, cycle, payload);
        });
  }

  /// Root handler: Algorithm 1 — check quiescence, else walk the global
  /// histogram for the two thresholds; always broadcast.
  std::optional<std::vector<double>> on_root(
      Pe& pe, std::uint64_t cycle, const std::vector<double>& sum) {
    const double created = sum[config_.num_buckets];
    const double processed = sum[config_.num_buckets + 1];
    const double finalized = sum[config_.num_buckets + 2];
    // Early termination on the finalized-vertex metric (needs the oracle
    // reachable count; see AcicConfig::use_vertex_termination).
    if (config_.use_vertex_termination &&
        config_.expected_reachable > 0 &&
        finalized >= static_cast<double>(config_.expected_reachable)) {
      return std::vector<double>{0.0, 0.0, 1.0, 0.0};  // terminate
    }
    const bool equal = created == processed;
    if (equal && root_armed_ && created == root_last_created_) {
      return std::vector<double>{0.0, 0.0, 1.0, 0.0};  // terminate
    }
    root_armed_ = equal;
    root_last_created_ = created;

    const std::vector<double> histogram(sum.begin(),
                                        sum.begin() + config_.num_buckets);
    Thresholds t;
    if (config_.threshold_policy == ThresholdPolicyKind::kWorkWindow) {
      t = compute_thresholds_work_window(histogram, machine_.num_pes(),
                                         config_.work_window);
    } else {
      const ThresholdPolicy policy{config_.p_tram, config_.p_pq,
                                   config_.low_activity_factor};
      t = compute_thresholds(histogram, machine_.num_pes(), policy);
    }

    if (config_.record_histograms) {
      HistogramSnapshot snap;
      snap.cycle = cycle;
      snap.time_us = pe.now();
      snap.counts = histogram;
      snap.active_updates = created - processed;
      snap.t_tram = t.t_tram;
      snap.t_pq = t.t_pq;
      snapshots_.push_back(std::move(snap));
    }

    // Per-cycle introspection stream: the chosen thresholds, the global
    // active-update count, and the full distance histogram, stamped at
    // the root's current time.
    if (config_.registry != nullptr) {
      obs::Registry& reg = *config_.registry;
      reg.append(obs_t_tram_, pe.now(), static_cast<double>(t.t_tram));
      reg.append(obs_t_pq_, pe.now(), static_cast<double>(t.t_pq));
      reg.append(obs_active_updates_, pe.now(), created - processed);
      reg.append_histogram(obs_histogram_, cycle, pe.now(), histogram);
    }

    std::size_t lowest_active = config_.num_buckets;
    for (std::size_t b = 0; b < histogram.size(); ++b) {
      if (histogram[b] > 0.0) {
        lowest_active = b;
        break;
      }
    }
    return std::vector<double>{static_cast<double>(t.t_tram),
                               static_cast<double>(t.t_pq), 0.0,
                               static_cast<double>(lowest_active)};
  }

  /// Early-termination cleanup: every update still waiting in pq,
  /// pq_hold or tram_hold is abandoned (counted processed so the
  /// created == processed conservation invariant survives).
  void abandon_remaining(PeState& state) {
    while (!state.pq.empty()) {
      mark_processed_bucket(state, bucket_of(state.pq.top()));
      ++state.superseded;
      state.pq.pop();
    }
    std::vector<UpdateMsg> leftovers;
    state.pq_hold.release_up_to(config_.num_buckets - 1, &leftovers);
    state.tram_hold.release_up_to(config_.num_buckets - 1, &leftovers);
    for (const UpdateMsg& u : leftovers) {
      mark_processed_bucket(state, bucket_of(u));
      ++state.superseded;
    }
  }

  /// Broadcast handler: adopt the new thresholds, release holds in
  /// increasing bucket order, flush tramlib, and re-contribute.
  void on_broadcast(Pe& pe, std::uint64_t /*cycle*/,
                    const std::vector<double>& payload) {
    PeState& state = state_of(pe);
    if (payload[2] != 0.0) {
      state.terminated = true;
      abandon_remaining(state);
      // Retirement counting is per simulated node (each node owns its
      // own counter — under the parallel engine PEs of different nodes
      // retire concurrently).  The last PE of each node reports "node
      // done" to PE 0 with an ordinary message; PE 0 counts nodes and
      // completes the query when the last report lands.  By then the
      // created == processed quiescence means no update message still
      // references this engine, so the owner may schedule retirement
      // (in a *separate* task — our frames are on the stack here).
      const std::uint32_t node = machine_.topology().node_of(pe.id());
      if (++node_term_[node].terminated == pes_per_node_) {
        pe.send(0, 8, [this](Pe& root) {
          if (++nodes_done_ == machine_.topology().nodes &&
              options_.on_complete) {
            options_.on_complete(root);
          }
        });
      }
      return;
    }
    state.t_tram = static_cast<std::size_t>(payload[0]);
    state.t_pq = static_cast<std::size_t>(payload[1]);
    state.lowest_active_bucket = static_cast<std::size_t>(payload[3]);

    std::vector<UpdateMsg>& release_buffer = state.release_scratch;
    release_buffer.clear();
    state.tram_hold.release_up_to(state.t_tram, &release_buffer);
    if (config_.registry != nullptr && !release_buffer.empty()) {
      config_.registry->add(obs_released_tram_, pe.id(),
                            release_buffer.size(), pe.now());
    }
    for (const UpdateMsg& u : release_buffer) {
      // The held message already carries its bucket and lane; re-emit it
      // verbatim (bit-identical to the old release-time re-bucketing —
      // the bucket is a pure function of the distance).
      tram_->insert(pe, partition_.owner(u.vertex), u);
    }

    release_buffer.clear();
    state.pq_hold.release_up_to(state.t_pq, &release_buffer);
    if (config_.registry != nullptr && !release_buffer.empty()) {
      config_.registry->add(obs_released_pq_, pe.id(),
                            release_buffer.size(), pe.now());
    }
    for (const UpdateMsg& u : release_buffer) {
      pe.charge(config_.costs.pq_op_us);
      state.pq.push(u);
      feed_frontier(u.vertex);
    }

    // The paper's manual flush: guarantees buffered updates eventually
    // move even when the tail has too little traffic to fill buffers.
    tram_->flush_all(pe);

    const PeId id = pe.id();
    machine_.schedule_at(pe.now() + config_.reduction_interval_us, id,
                         [this](Pe& next) { contribute(next); });
  }

  runtime::Machine& machine_;
  const graph::Csr& csr_;
  const graph::Partition1D& partition_;
  VertexId source_;
  AcicConfig config_;
  AcicEngineOptions options_;

  std::vector<PeState> pes_;
  /// Distance lanes carried by this engine (1 outside batched
  /// multi-source mode; == options_.sources.size() inside it).
  std::uint32_t num_lanes_ = 1;
  std::vector<runtime::IdleHandlerId> idle_handler_ids_;
  /// Per-node retirement counters (cache-line padded: each node's PEs
  /// retire on their own shard under the parallel engine).
  struct alignas(64) NodeTermination {
    std::uint32_t terminated = 0;
  };
  std::vector<NodeTermination> node_term_;
  std::uint32_t pes_per_node_ = 0;
  /// Nodes whose "node done" report has reached PE 0.  Written only by
  /// PE 0's tasks; read by complete() after run() returns.
  std::uint32_t nodes_done_ = 0;
  std::unique_ptr<UpdateTram> tram_;
  std::unique_ptr<runtime::Reducer> reducer_;

  // Root-side termination double-check state.
  bool root_armed_ = false;
  double root_last_created_ = -1.0;

  std::vector<HistogramSnapshot> snapshots_;

  // Registry handles; valid iff config_.registry != nullptr.
  obs::SeriesId obs_t_tram_;
  obs::SeriesId obs_t_pq_;
  obs::SeriesId obs_active_updates_;
  obs::HistogramSeriesId obs_histogram_;
  obs::CounterId obs_held_tram_;
  obs::CounterId obs_released_tram_;
  obs::CounterId obs_held_pq_;
  obs::CounterId obs_released_pq_;
  /// Shared per-process work-stealing queues (shared-memory structures;
  /// pushes/pops charge an atomic-operation cost).
  std::vector<std::deque<StealChunk>> steal_queues_;

  /// Optimistic-engine snapshot shard, one per simulated node (padded so
  /// concurrently checkpointing shards never share a cache line).
  struct alignas(64) NodeCkpt {
    std::vector<PeState> pes;  // the node's PEs, ascending PeId
    std::vector<std::deque<StealChunk>> steal_queues;  // the node's procs
    std::uint32_t node_term = 0;
    // Root-side state, meaningful on node 0 only.
    std::uint32_t nodes_done = 0;
    bool root_armed = false;
    double root_last_created = -1.0;
    std::size_t snapshots_size = 0;
  };
  std::vector<NodeCkpt> spec_ckpt_;
};

AcicEngine::AcicEngine(runtime::Machine& machine, const graph::Csr& csr,
                       const graph::Partition1D& partition, VertexId source,
                       const AcicConfig& config, AcicEngineOptions options)
    : impl_(std::make_unique<Impl>(machine, csr, partition, source, config,
                                   std::move(options))) {}

AcicEngine::~AcicEngine() = default;

bool AcicEngine::complete() const { return impl_->complete(); }
VertexId AcicEngine::source() const { return impl_->source(); }
AcicRunResult AcicEngine::collect() const { return impl_->collect(); }

AcicRunResult acic_sssp(runtime::Machine& machine, const graph::Csr& csr,
                        const graph::Partition1D& partition,
                        VertexId source, const AcicConfig& config,
                        runtime::SimTime time_limit_us) {
  AcicEngine engine(machine, csr, partition, source, config);
  const runtime::RunStats stats = machine.run(time_limit_us);

  // Per-query counters come from the engine; machine-level accounting
  // (network totals, end time, per-PE busy time) from this run().
  AcicRunResult result = engine.collect();
  result.hit_time_limit = stats.hit_time_limit;
  result.sssp.metrics.network_messages = stats.messages_sent;
  result.sssp.metrics.network_bytes = stats.bytes_sent;
  result.sssp.metrics.sim_time_us = stats.end_time_us;
  result.pe_busy_us.resize(machine.num_pes());
  for (PeId p = 0; p < machine.num_pes(); ++p) {
    result.pe_busy_us[p] = machine.pe_busy_us(p);
  }
  return result;
}

}  // namespace acic::core
