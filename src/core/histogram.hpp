#pragma once
// The update-distance histogram at the heart of ACIC's introspection
// (paper §II.B).
//
// Each PE keeps a local histogram of *active* updates (created but not
// yet processed) bucketed by distance value.  The PE that creates an
// update increments its local bucket; the PE that finishes processing it
// decrements its own local bucket — so an individual PE's counts can go
// negative, and only the all-PE sum (produced by the continuous
// reduction) is meaningful.  The paper's bucket rule is
//     bucket(d) = d / log(|V|),
// i.e. equal-width buckets of width log(|V|); the final bucket absorbs
// all larger distances.  The paper's runs use 512 buckets (fig. 1).

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/graph/types.hpp"
#include "src/util/assert.hpp"

namespace acic::core {

class UpdateHistogram {
 public:
  /// `bucket_width` of 0 selects the paper's rule log2(|V|).
  UpdateHistogram(std::size_t num_buckets, double bucket_width,
                  graph::VertexId num_vertices)
      : width_(bucket_width > 0.0
                   ? bucket_width
                   : default_width(num_vertices)),
        counts_(num_buckets, 0) {
    ACIC_ASSERT(num_buckets > 0);
    ACIC_ASSERT(width_ > 0.0);
  }

  static double default_width(graph::VertexId num_vertices) {
    // log(|V|); guard tiny graphs where log2 would be <= 0.
    return std::max(1.0, std::log2(static_cast<double>(num_vertices)));
  }

  std::size_t num_buckets() const { return counts_.size(); }
  double bucket_width() const { return width_; }

  /// Bucket index of distance d; the last bucket absorbs overflow.
  std::size_t bucket_of(graph::Dist d) const {
    ACIC_HOT_ASSERT(d >= 0.0);
    const auto b = static_cast<std::size_t>(d / width_);
    return b < counts_.size() ? b : counts_.size() - 1;
  }

  void increment(std::size_t bucket) {
    ACIC_HOT_ASSERT(bucket < counts_.size());
    ++counts_[bucket];
  }
  void decrement(std::size_t bucket) {
    ACIC_HOT_ASSERT(bucket < counts_.size());
    --counts_[bucket];
  }

  const std::vector<std::int64_t>& counts() const { return counts_; }

  /// Appends the counts onto a reduction payload.
  void append_to(std::vector<double>* payload) const {
    for (const std::int64_t c : counts_) {
      payload->push_back(static_cast<double>(c));
    }
  }

 private:
  double width_;
  std::vector<std::int64_t> counts_;
};

}  // namespace acic::core
