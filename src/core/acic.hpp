#pragma once
// ACIC — Asynchronous Continuous Introspection and Control (the paper's
// core contribution).
//
// A fully asynchronous, label-correcting SSSP driven by updates
// u = (v, d), modulated by a continuous cycle of histogram reductions and
// threshold broadcasts:
//
//   creation ──► within t_tram? ──► tramlib ──► arrival at owner PE
//        │             │no                           │
//        │         tram_hold ◄─ released by bcast    ├─ worse? rejected
//        │                                           └─ better: store d,
//        │                                              within t_pq? → pq
//        │                                              else pq_hold
//        └── histogram bucket incremented
//   PE idle ──► pop pq in increasing d ──► still current (dist==d)?
//                                           └─ yes: expand out-edges
//                                              (create onward updates)
//
// Termination: created/processed counters ride the histogram reduction;
// the root terminates after two consecutive cycles with equal, unchanged
// counters (paper §II.D).

#include <cstdint>
#include <vector>

#include "src/core/config.hpp"
#include "src/graph/csr.hpp"
#include "src/graph/partition.hpp"
#include "src/runtime/machine.hpp"
#include "src/sssp/result.hpp"

namespace acic::core {

/// Global histogram observed at the root after one reduction cycle
/// (recorded when AcicConfig::record_histograms is set; fig. 1 material).
struct HistogramSnapshot {
  std::uint64_t cycle = 0;
  runtime::SimTime time_us = 0.0;
  std::vector<double> counts;
  double active_updates = 0.0;
  std::size_t t_tram = 0;
  std::size_t t_pq = 0;
};

/// Counts of updates passing through each stage of the fig. 2 lifecycle
/// diagram (create → tram/tram_hold → arrival → pq/pq_hold → expand or
/// reject).
struct LifecycleCounts {
  std::uint64_t created = 0;
  std::uint64_t sent_directly = 0;    // within t_tram at creation
  std::uint64_t held_in_tram = 0;     // waited in tram_hold
  std::uint64_t rejected_on_arrival = 0;
  std::uint64_t entered_pq_directly = 0;  // within t_pq on acceptance
  std::uint64_t held_in_pq_hold = 0;
  std::uint64_t superseded_in_pq = 0;  // popped stale (wasted)
  std::uint64_t expanded = 0;          // generated onward updates
};

struct AcicRunResult {
  sssp::SsspResult sssp;
  std::uint64_t reduction_cycles = 0;
  bool hit_time_limit = false;
  LifecycleCounts lifecycle;
  std::vector<HistogramSnapshot> histograms;
  /// Per-worker busy time, for load-imbalance analysis.
  std::vector<runtime::SimTime> pe_busy_us;
};

/// Runs ACIC SSSP on `machine` (freshly constructed; one run per machine
/// so simulated time starts at zero).  `partition` must have exactly
/// machine.num_pes() parts covering csr's vertices.
AcicRunResult acic_sssp(runtime::Machine& machine, const graph::Csr& csr,
                        const graph::Partition1D& partition,
                        graph::VertexId source, const AcicConfig& config,
                        runtime::SimTime time_limit_us =
                            runtime::kNoTimeLimit);

}  // namespace acic::core
