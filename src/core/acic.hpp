#pragma once
// ACIC — Asynchronous Continuous Introspection and Control (the paper's
// core contribution).
//
// A fully asynchronous, label-correcting SSSP driven by updates
// u = (v, d), modulated by a continuous cycle of histogram reductions and
// threshold broadcasts:
//
//   creation ──► within t_tram? ──► tramlib ──► arrival at owner PE
//        │             │no                           │
//        │         tram_hold ◄─ released by bcast    ├─ worse? rejected
//        │                                           └─ better: store d,
//        │                                              within t_pq? → pq
//        │                                              else pq_hold
//        └── histogram bucket incremented
//   PE idle ──► pop pq in increasing d ──► still current (dist==d)?
//                                           └─ yes: expand out-edges
//                                              (create onward updates)
//
// Termination: created/processed counters ride the histogram reduction;
// the root terminates after two consecutive cycles with equal, unchanged
// counters (paper §II.D).

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/core/config.hpp"
#include "src/graph/csr.hpp"
#include "src/graph/partition.hpp"
#include "src/runtime/machine.hpp"
#include "src/sssp/result.hpp"
#include "src/sssp/update.hpp"

namespace acic::core {

/// Global histogram observed at the root after one reduction cycle
/// (recorded when AcicConfig::record_histograms is set; fig. 1 material).
struct HistogramSnapshot {
  std::uint64_t cycle = 0;
  runtime::SimTime time_us = 0.0;
  std::vector<double> counts;
  double active_updates = 0.0;
  std::size_t t_tram = 0;
  std::size_t t_pq = 0;
};

/// Counts of updates passing through each stage of the fig. 2 lifecycle
/// diagram (create → tram/tram_hold → arrival → pq/pq_hold → expand or
/// reject).
struct LifecycleCounts {
  std::uint64_t created = 0;
  std::uint64_t sent_directly = 0;    // within t_tram at creation
  std::uint64_t held_in_tram = 0;     // waited in tram_hold
  std::uint64_t rejected_on_arrival = 0;
  std::uint64_t entered_pq_directly = 0;  // within t_pq on acceptance
  std::uint64_t held_in_pq_hold = 0;
  std::uint64_t superseded_in_pq = 0;  // popped stale (wasted)
  std::uint64_t expanded = 0;          // generated onward updates
};

struct AcicRunResult {
  sssp::SsspResult sssp;
  std::uint64_t reduction_cycles = 0;
  bool hit_time_limit = false;
  LifecycleCounts lifecycle;
  std::vector<HistogramSnapshot> histograms;
  /// Per-worker busy time, for load-imbalance analysis.
  std::vector<runtime::SimTime> pe_busy_us;
  /// Batched multi-source runs only (AcicEngineOptions::sources): one
  /// full distance vector per lane, lane_dist[i][v] == d(sources[i], v).
  /// Empty for classic single-source runs (use sssp.dist).
  std::vector<std::vector<graph::Dist>> lane_dist;
};

/// Options controlling how an engine instance attaches to the machine
/// (defaults reproduce the classic standalone acic_sssp run).
struct AcicEngineOptions {
  /// Simulated time at which the source update is injected and the
  /// reduction cycle starts.  0 for a standalone run; the admission time
  /// when a query joins an already-running machine (src/server/).
  runtime::SimTime start_time_us = 0.0;
  /// Invoked exactly once — from inside a machine task on the last PE to
  /// observe the termination broadcast — when the query has fully
  /// quiesced.  The engine must NOT be destroyed from inside the
  /// callback (engine code is still on the stack); schedule a separate
  /// task for retirement, as QueryService does.
  std::function<void(runtime::Pe&)> on_complete;

  /// Warm start — the incremental-repair mode (src/dynamic/).  When
  /// `warm_dist` is set (size |V|), every PE initializes its owned
  /// distance slice from it instead of all-infinity, and the engine
  /// injects `seeds` at start_time_us *instead of* the single
  /// (source, 0) update.  Each seed (v, d) is created on v's owner in
  /// vector order (sort by (vertex, dist) for a canonical schedule), and
  /// is rejected on arrival exactly like any other update if d does not
  /// improve warm_dist[v] — so redundant seeds cost one message, never
  /// correctness.  An empty seed list quiesces after two reduction
  /// cycles (0 created == 0 processed observed twice).  The repair
  /// layer's contract: warm distances must be achievable path lengths in
  /// the *current* graph (invalidated subtrees reset to +inf), and seeds
  /// must cover every boundary edge into an invalidated region plus
  /// every inserted/decreased edge that improves its head — then the
  /// label-correcting fixed point equals the from-scratch distances,
  /// which tests/dynamic_test.cpp asserts elementwise.  `warm_dist` must
  /// outlive the constructor call only (the engine copies its slices).
  const std::vector<graph::Dist>* warm_dist = nullptr;
  std::vector<sssp::Update> seeds;

  /// Batched multi-source mode (src/server/ query batching).  When
  /// non-empty, the engine runs one shared label-correcting pass over
  /// `sources.size()` independent *distance lanes*: every update carries
  /// an 8-bit lane tag packed into its bucket word (so the wire format
  /// stays 16 bytes), each PE keeps lanes × |owned| distance slots, and
  /// lane i's fixed point equals a solo run from sources[i] exactly —
  /// the lanes share the tram, the histogram/threshold cycle and the
  /// quiescence counters, which is where the batching amortization comes
  /// from, but never read each other's distances.  Constraints:
  /// sources[0] must equal the constructor's `source`, at most 256 lanes
  /// (tag width), and incompatible with `warm_dist` (warm repair is a
  /// per-query affair) and with `use_vertex_termination` (the finalized
  /// count is defined against one source's reachable set).  Results come
  /// back in AcicRunResult::lane_dist.
  std::vector<graph::VertexId> sources;
};

/// One ACIC SSSP query attached to a Machine.  Engines are per-query
/// objects: several can coexist on one machine (each owns its own
/// tramlib instance, reduction tree and priority queues, so their
/// traffic is naturally namespaced by the closures it travels in), and
/// each registers its idle-time pq drain via Machine::add_idle_handler
/// so concurrent queries share idle dispatch instead of clobbering it.
///
/// Destruction contract: destroy only after complete() — at termination
/// the created == processed quiescence guarantees no in-flight update
/// messages reference the engine — and never from a task the engine
/// itself issued (its frames are below you on the stack).
class AcicEngine {
 public:
  AcicEngine(runtime::Machine& machine, const graph::Csr& csr,
             const graph::Partition1D& partition, graph::VertexId source,
             const AcicConfig& config, AcicEngineOptions options = {});
  ~AcicEngine();

  AcicEngine(const AcicEngine&) = delete;
  AcicEngine& operator=(const AcicEngine&) = delete;

  /// True once every PE has observed the termination broadcast.
  bool complete() const;
  graph::VertexId source() const;

  /// Distances, lifecycle counters, reduction cycles and histogram
  /// snapshots.  Machine-level fields (network totals, sim time, per-PE
  /// busy time) are left zero: they are per-machine, not per-query —
  /// acic_sssp fills them from RunStats for standalone runs.
  AcicRunResult collect() const;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

/// Runs ACIC SSSP on `machine` (freshly constructed; one run per machine
/// so simulated time starts at zero).  `partition` must have exactly
/// machine.num_pes() parts covering csr's vertices.
AcicRunResult acic_sssp(runtime::Machine& machine, const graph::Csr& csr,
                        const graph::Partition1D& partition,
                        graph::VertexId source, const AcicConfig& config,
                        runtime::SimTime time_limit_us =
                            runtime::kNoTimeLimit);

}  // namespace acic::core
