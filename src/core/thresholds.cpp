#include "src/core/thresholds.hpp"

namespace acic::core {

std::size_t bucket_at_fraction(const std::vector<double>& histogram,
                               double fraction, double total) {
  ACIC_ASSERT(!histogram.empty());
  ACIC_ASSERT(fraction > 0.0 && fraction <= 1.0);
  if (total <= 0.0) return histogram.size() - 1;
  const double goal = fraction * total;
  double cumulative = 0.0;
  for (std::size_t b = 0; b < histogram.size(); ++b) {
    cumulative += histogram[b];
    if (cumulative >= goal) return b;
  }
  return histogram.size() - 1;
}

Thresholds compute_thresholds(const std::vector<double>& global_histogram,
                              std::uint32_t num_pes,
                              const ThresholdPolicy& policy) {
  double total = 0.0;
  for (const double c : global_histogram) total += c;

  const double low_cutoff =
      static_cast<double>(policy.low_activity_factor) * num_pes;
  Thresholds t;
  if (total <= low_cutoff) {
    // Low parallelism: open both thresholds fully so every held update
    // flows (this is also what drives the tail of the computation to
    // completion).
    t.t_tram = global_histogram.size() - 1;
    t.t_pq = global_histogram.size() - 1;
  } else {
    t.t_tram = bucket_at_fraction(global_histogram, policy.p_tram, total);
    t.t_pq = bucket_at_fraction(global_histogram, policy.p_pq, total);
  }
  return t;
}

namespace {

/// Smallest bucket index whose cumulative count reaches `target`; the
/// top bucket when the whole histogram is smaller than the target.
std::size_t bucket_at_count(const std::vector<double>& histogram,
                            double target) {
  double cumulative = 0.0;
  for (std::size_t b = 0; b < histogram.size(); ++b) {
    cumulative += histogram[b];
    if (cumulative >= target) return b;
  }
  return histogram.size() - 1;
}

}  // namespace

Thresholds compute_thresholds_work_window(
    const std::vector<double>& global_histogram, std::uint32_t num_pes,
    const WorkWindowPolicy& policy) {
  ACIC_ASSERT(!global_histogram.empty());
  Thresholds t;
  t.t_pq = bucket_at_count(
      global_histogram,
      static_cast<double>(policy.pq_window_per_pe) * num_pes);
  t.t_tram = bucket_at_count(
      global_histogram,
      static_cast<double>(policy.tram_window_per_pe) * num_pes);
  return t;
}

}  // namespace acic::core
