#pragma once
// Tunable parameters of the ACIC algorithm (paper §III) plus the ablation
// switches used by the bench/ablation_* harnesses.

#include <cstdint>

#include "src/core/thresholds.hpp"
#include "src/obs/registry.hpp"
#include "src/sssp/cost_model.hpp"
#include "src/tram/tram.hpp"

namespace acic::graph::ooc {
class FrontierFeed;
}

namespace acic::core {

struct AcicConfig {
  /// Tram threshold percentile p_tram in (0, 1]; the paper's sweep finds
  /// 0.999 optimal (send everything through tramlib immediately).
  double p_tram = 0.999;
  /// PQ threshold percentile p_pq in (0, 1]; the paper finds 0.05 optimal
  /// (only the lowest-distance 5% of updates enter pq immediately).
  double p_pq = 0.05;
  /// The 100·|PE| low-activity rule multiplier.
  std::uint64_t low_activity_factor = 100;

  /// Threshold function: the paper's two-tier Algorithm 1 by default, or
  /// the future-work shape-aware work-window function (§V).
  ThresholdPolicyKind threshold_policy = ThresholdPolicyKind::kTwoTier;
  WorkWindowPolicy work_window;

  /// Histogram geometry: the paper uses 512 buckets of width log(|V|)
  /// (bucket_width of 0 selects that rule).
  std::size_t num_buckets = 512;
  double bucket_width = 0.0;

  /// Message aggregation (paper finds WP best for SSSP; buffer size is
  /// swept in fig. 6).
  tram::TramConfig tram;

  /// Delay between a PE receiving a broadcast and contributing to the
  /// next reduction cycle; bounds the introspection rate.  The reductions
  /// overlap with update processing (that is the point of ACIC), so a
  /// short interval costs little — fig. 3 quantifies exactly how little.
  runtime::SimTime reduction_interval_us = 10.0;

  /// Updates popped from pq per idle invocation; small batches keep the
  /// PE responsive to arriving messages and broadcasts.
  std::size_t pq_drain_batch = 32;

  sssp::CostModel costs;

  // ---- ablation switches (all true reproduces the paper's ACIC) ----
  /// Min-priority queue of improving updates (off = expand immediately on
  /// acceptance, like the baseline asynchronous algorithm of §II.A).
  bool use_pq = true;
  /// Sender-side hold gated by t_tram (off = every update goes straight
  /// to tramlib, equivalent to forcing p_tram = 1).
  bool use_tram_hold = true;
  /// Receiver-side hold gated by t_pq (off = forcing p_pq = 1).
  bool use_pq_hold = true;

  /// Record the root's global histogram every cycle (fig. 1 support;
  /// costs memory, off by default).
  bool record_histograms = false;

  /// Optional observability registry (src/obs/registry.hpp).  When set,
  /// the engine streams its introspection state per reduction cycle —
  /// chosen thresholds ("acic/t_tram", "acic/t_pq"), the global active
  /// count ("acic/active_updates"), the full update-distance histogram
  /// ("acic/update_histogram"), and hold/release counters — and the
  /// engine's tram publishes "tram/*" (the registry is propagated into
  /// the tram config unless that already names one).  Publishing never
  /// charges simulated CPU.  Must outlive the engine.
  obs::Registry* registry = nullptr;

  /// Optional out-of-core frontier feed (src/graph/ooc_prefetch.hpp).
  /// When set, the engine publishes the vertex id of every update
  /// entering pq or the pq-hold — the vertices whose adjacency rows are
  /// about to be walked — so a PagePrefetcher can madvise the backing
  /// pages of an mmap-backed CSR ahead of the faulting access.
  /// Publication is best-effort host-side work: it never charges
  /// simulated CPU, never blocks (the ring drops on overflow), and the
  /// hints it produces cannot change any value read, so results are
  /// bit-identical with or without a feed.  Must outlive the engine.
  graph::ooc::FrontierFeed* frontier_feed = nullptr;

  /// In-process work stealing (future work, §V): when the owner expands
  /// a vertex whose out-degree reaches this threshold, the edge range is
  /// split into chunks pushed onto a *shared per-process work queue*
  /// ("Charm++ supports work-stealing queues shared by PEs on the same
  /// process"); idle PEs of the process pull chunks and relax them
  /// against the shared-memory CSR, routing the resulting updates
  /// themselves.  0 disables stealing.  Each chunk is accounted as one
  /// extra update (created at the owner, processed by whoever relaxes
  /// it) so quiescence detection still sees in-flight chunks.
  std::uint32_t steal_threshold_degree = 0;
  /// Edges per stolen chunk.
  std::uint32_t steal_chunk_edges = 64;
  /// CPU cost of one shared-queue push/pop (atomic operations).
  runtime::SimTime steal_queue_op_us = 0.02;

  /// Static 1.5-D-style hub splitting (future work §V, after Cao et
  /// al.): expansions of vertices with out-degree >= this threshold are
  /// split into chunks scattered round-robin across *all* worker PEs
  /// (not just the owner's process), statically spreading a hub's edge
  /// work over the whole machine the way a 1.5-D edge partition would.
  /// 0 disables.  Each chunk is accounted like a work-stealing chunk so
  /// quiescence sees it in flight.  Composes with steal_threshold_degree
  /// (hub split wins for vertices above this threshold).
  std::uint32_t hub_split_degree = 0;

  /// The paper's abandoned early-termination experiment (§II.D): a
  /// vertex whose distance is below the smallest active update distance
  /// is final; when all *reachable* vertices are final the algorithm can
  /// stop immediately, ignoring in-flight updates.  The paper dropped
  /// this because the reachable count is unknowable up front — enabling
  /// it therefore requires supplying `expected_reachable` from an oracle
  /// (e.g. a prior run).  Zero keeps the default counter-based scheme.
  bool use_vertex_termination = false;
  std::uint64_t expected_reachable = 0;
  /// Per-vertex CPU cost of the finalized-count scan each contribution.
  runtime::SimTime finalize_scan_us_per_vertex = 0.001;

  AcicConfig() {
    tram.item_bytes = 16;  // one Update on the wire
  }
};

}  // namespace acic::core
