// Ablation: straggler sensitivity — one worker PE is slowed to a
// fraction of full speed (not PE 0, which is every algorithm's reduction
// root).
//
// Measured finding (worth stating honestly): a *persistent* straggler
// binds ACIC harder than the bulk-synchronous baseline.  ACIC is
// compute-bound, so its makespan tracks the slow PE's work share almost
// exactly (1/factor), while Δ-stepping's runtime contains a large
// barrier-latency component that does not scale with the slow PE's
// compute, diluting its slowdown.  This is precisely the load-imbalance
// weakness the paper concedes for ACIC's static 1-D partition and the
// motivation for its future-work proposals (in-process work stealing and
// over-decomposition with migration, §V); the work-stealing column shows
// how much of it the in-process stealing recovers.

#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/util/rng.hpp"

int main(int argc, char** argv) {
  using namespace acic;
  const util::Options opts(argc, argv);
  const auto scale =
      static_cast<std::uint32_t>(opts.get_int("scale", 13));
  const auto nodes =
      static_cast<std::uint32_t>(opts.get_int("nodes", 4));
  const auto trials =
      static_cast<std::uint32_t>(opts.get_int("trials", 3));

  std::printf("Ablation: straggler sensitivity (random graph scale=%u, "
              "%u mini-nodes, one slow PE, %u trials)\n",
              scale, nodes, trials);

  util::Table table({"slow_pe_speed", "acic_time_s", "acic_ws_time_s",
                     "riken_time_s", "acic_slowdown", "acic_ws_slowdown",
                     "riken_slowdown"});
  double acic_base = 0.0;
  double ws_base = 0.0;
  double riken_base = 0.0;
  for (const double factor : {1.0, 0.5, 0.25, 0.125}) {
    double acic_time = 0.0;
    double ws_time = 0.0;
    double riken_time = 0.0;
    for (std::uint32_t trial = 0; trial < trials; ++trial) {
      stats::ExperimentSpec spec;
      spec.graph = stats::GraphKind::kRandom;
      spec.scale = scale;
      spec.nodes = nodes;
      spec.seed = util::derive_seed(41, trial);
      spec.straggler_factor = factor;
      const graph::Csr csr = stats::build_graph(spec);
      acic_time += stats::run_algorithm(stats::Algo::kAcic, csr, spec)
                       .sssp.metrics.sim_time_s();
      stats::AlgoParams stealing;
      stealing.acic.steal_threshold_degree = 1;  // steal everything
      ws_time += stats::run_algorithm(stats::Algo::kAcic, csr, spec,
                                      stealing)
                     .sssp.metrics.sim_time_s();
      riken_time += stats::run_algorithm(stats::Algo::kRiken, csr, spec)
                        .sssp.metrics.sim_time_s();
    }
    acic_time /= trials;
    ws_time /= trials;
    riken_time /= trials;
    if (factor == 1.0) {
      acic_base = acic_time;
      ws_base = ws_time;
      riken_base = riken_time;
    }
    table.add_row({util::strformat("%.3f", factor),
                   util::strformat("%.5f", acic_time),
                   util::strformat("%.5f", ws_time),
                   util::strformat("%.5f", riken_time),
                   util::strformat("%.2fx", acic_time / acic_base),
                   util::strformat("%.2fx", ws_time / ws_base),
                   util::strformat("%.2fx", riken_time / riken_base)});
  }
  table.print();
  std::printf("expected: in-process work stealing (acic_ws) recovers part "
              "of the straggler loss by offloading the slow PE's edge "
              "relaxations to its process siblings\n");
  bench::write_csv(table, opts, "ablation_straggler.csv");
  return 0;
}
