// Serving-layer load bench: latency/throughput curves for the
// QueryService as offered QPS varies, with the serving tiers —
// multi-source batching and the landmark/goal-directed p2p tier —
// individually toggled per arm:
//
//   baseline    one engine per query, no landmarks
//   batch       up to --batch queries coalesced per engine pass
//   landmarks   p2p queries served by the exact landmark tiers
//   batch+lmk   both
//
// Expected shapes (classic open-loop queueing):
//   * as offered QPS approaches the service's engine throughput, queue
//     wait — and with it p95/p99 — blows up while p50 stays flat until
//     saturation (the tail feels congestion first);
//   * batching multiplies engine throughput at the same admission
//     bound, moving the knee right;
//   * the landmark tier peels p2p queries off the engine path entirely,
//     which both serves them in microseconds and frees slots for the
//     full-SSSP traffic.
//
// Exactness gate (static cells): every answer the service produced is
// verified against a dedicated per-query full-engine run —
//   * every point-to-point answer (always retained as a scalar) must be
//     bitwise equal to the solo engine's dist[target] for its source;
//   * when the cell is small enough to retain full vectors
//     (queries <= --verify-full-max, always true under --smoke), every
//     full-SSSP answer is compared vector-for-vector;
//   * independently, every vector still resident in the result cache is
//     compared against the solo run for its source (these are exactly
//     the engine/batch lane outputs).
// Any divergence prints the offending query and the process exits 1 —
// this is wired into CI under ASan/UBSan via --smoke.  Cells running
// under mutation churn (--mutation-rate > 0) skip the gate: answers are
// exact for their admission epoch, which a post-hoc solver on the final
// graph cannot reproduce.
//
//   ./bench/server_load [--scale N] [--queries-per-cell Q] [--inflight K]
//                       [--qps a,b,c] [--batch B] [--landmarks L]
//                       [--p2p F] [--cache C] [--csv PATH] [--smoke]
//                       [--verify-full-max M]
//                       [--mutation-rate R] [--mutation-batch B]
//                       [--trace-json PATH] [--obs-csv PATH]
//
// Default sweep: 4 arms x 5 QPS points x 6000 queries = 120k queries
// total (the documented >= 1e5 acceptance scale).  --smoke shrinks to a
// CI-sized run (4 arms x 1 QPS x 400 queries, full verification, plus
// one churn cell for sanitizer coverage of the dynamic paths).
//
// With --trace-json / --obs-csv the *last* sweep cell runs with a
// capacity-bounded tracer and an observability registry attached and
// exports them.

#include <cstdio>
#include <map>
#include <optional>

#include "bench/bench_common.hpp"
#include "src/core/acic.hpp"
#include "src/dynamic/dynamic_graph.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/partition.hpp"
#include "src/runtime/machine.hpp"
#include "src/server/service.hpp"
#include "src/server/workload.hpp"

namespace {

using namespace acic;

struct Arm {
  const char* name;
  bool batch;
  bool landmarks;
};

/// Solo full-engine reference runs, one per distinct source (memoized:
/// the graph and engine config are fixed across the sweep).
class ReferenceSolver {
 public:
  ReferenceSolver(const graph::Csr& csr, runtime::Topology topo)
      : csr_(csr), topo_(topo) {}

  const std::vector<graph::Dist>& dist(graph::VertexId source) {
    auto it = refs_.find(source);
    if (it == refs_.end()) {
      runtime::Machine machine(topo_);
      const graph::Partition1D partition = graph::Partition1D::block(
          csr_.num_vertices(), machine.num_pes());
      auto result =
          core::acic_sssp(machine, csr_, partition, source, {});
      it = refs_.emplace(source, std::move(result.sssp.dist)).first;
    }
    return it->second;
  }

 private:
  const graph::Csr& csr_;
  runtime::Topology topo_;
  std::map<graph::VertexId, std::vector<graph::Dist>> refs_;
};

/// Verifies every retained answer of a completed static-mode cell
/// against dedicated solo engine runs.  Returns the number of answers
/// checked; exits the process on any divergence.
std::uint64_t verify_cell(const server::QueryService& service,
                          ReferenceSolver& refs, bool full_retained) {
  std::uint64_t checked = 0;
  for (const server::QueryRecord& r : service.records()) {
    if (r.mode == server::ResultMode::kPointToPoint) {
      const server::QueryResult* result = service.result_of(r.id);
      if (result == nullptr ||
          result->distance != refs.dist(r.source)[r.target]) {
        std::fprintf(stderr,
                     "EXACTNESS VIOLATION: p2p query %llu (%u -> %u) "
                     "served %.17g, full engine says %.17g\n",
                     static_cast<unsigned long long>(r.id), r.source,
                     r.target,
                     result != nullptr ? result->distance : -1.0,
                     refs.dist(r.source)[r.target]);
        std::exit(1);
      }
      ++checked;
    } else if (full_retained) {
      const server::QueryResult* result = service.result_of(r.id);
      if (result == nullptr || result->distances != refs.dist(r.source)) {
        std::fprintf(stderr,
                     "EXACTNESS VIOLATION: full query %llu (source %u) "
                     "differs from a dedicated engine run\n",
                     static_cast<unsigned long long>(r.id), r.source);
        std::exit(1);
      }
      ++checked;
    }
  }
  // The cache holds exactly the engine/batch lane outputs: compare each
  // resident vector against the solo run for its source.
  for (const graph::VertexId source : service.cache().cached_sources()) {
    if (*service.cache().peek(source) != refs.dist(source)) {
      std::fprintf(stderr,
                   "EXACTNESS VIOLATION: cached vector for source %u "
                   "differs from a dedicated engine run\n",
                   source);
      std::exit(1);
    }
    ++checked;
  }
  return checked;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Options opts(argc, argv);
  const bool smoke = opts.has("smoke");

  graph::GenParams params;
  params.num_vertices =
      graph::VertexId{1}
      << static_cast<unsigned>(opts.get_int("scale", smoke ? 8 : 9));
  params.num_edges = params.num_vertices * 16ull;
  params.seed = 1;
  const graph::EdgeList edge_list = graph::generate_uniform_random(params);
  const graph::Csr csr = graph::Csr::from_edge_list(edge_list);

  auto mutation_rate =
      static_cast<std::uint32_t>(opts.get_int("mutation-rate", 0));
  const auto mutation_batch = static_cast<std::size_t>(
      opts.get_int("mutation-batch", 8));

  const auto queries = static_cast<std::uint64_t>(
      opts.get_int("queries-per-cell", smoke ? 400 : 6000));
  const auto inflight =
      static_cast<std::uint32_t>(opts.get_int("inflight", 3));
  const auto max_batch =
      static_cast<std::size_t>(opts.get_int("batch", 8));
  const auto num_landmarks =
      static_cast<std::size_t>(opts.get_int("landmarks", 8));
  const auto cache_cap =
      static_cast<std::size_t>(opts.get_int("cache", 24));
  const double p2p_fraction = opts.get_double("p2p", 0.3);
  const auto verify_full_max = static_cast<std::uint64_t>(
      opts.get_int("verify-full-max", smoke ? 1000000 : 2000));

  std::vector<std::uint32_t> qps_list =
      smoke ? std::vector<std::uint32_t>{3000}
            : std::vector<std::uint32_t>{500, 1000, 2000, 4000, 8000};
  if (opts.has("qps")) qps_list = bench::parse_list(opts.get("qps", ""));

  const std::vector<Arm> arms = {{"baseline", false, false},
                                 {"batch", true, false},
                                 {"landmarks", false, true},
                                 {"batch+lmk", true, true}};

  std::printf("Serving-layer load sweep: scale=%u graph, %llu queries x "
              "%zu arms x %zu qps points (%llu total), max_inflight=%u, "
              "batch<=%zu, %zu landmarks, p2p=%.2f, Topology{2,2,2}\n",
              static_cast<unsigned>(opts.get_int("scale", smoke ? 8 : 9)),
              static_cast<unsigned long long>(queries), arms.size(),
              qps_list.size(),
              static_cast<unsigned long long>(queries * arms.size() *
                                              qps_list.size()),
              inflight, max_batch, num_landmarks, p2p_fraction);

  util::Table table({"arm", "offered_qps", "throughput_qps", "p50_us",
                     "p95_us", "p99_us", "mean_wait_us", "hit_rate",
                     "batches", "lmk_exact", "goal_dir", "verified"});

  const bool want_obs = opts.has("trace-json") || opts.has("obs-csv");
  const runtime::Topology topo{2, 2, 2};
  ReferenceSolver refs(csr, topo);
  std::uint64_t total_verified = 0;

  // Smoke adds one churn cell at the end (sanitizer coverage of the
  // dynamic serving paths; exactness gate does not apply to it).
  const std::size_t churn_cells = (smoke && mutation_rate == 0) ? 1 : 0;

  for (std::size_t ai = 0; ai < arms.size() + churn_cells; ++ai) {
    const bool churn_cell = ai == arms.size();
    const Arm arm = churn_cell ? Arm{"churn", true, true} : arms[ai];
    const std::uint32_t cell_mutation_rate =
        churn_cell ? 4000 : mutation_rate;
    for (std::size_t qi = 0; qi < qps_list.size(); ++qi) {
      const std::uint32_t qps = qps_list[qi];
      // Observe the last configuration of the sweep (the most loaded).
      const bool observed = want_obs && ai + 1 == arms.size() &&
                            qi + 1 == qps_list.size();
      runtime::Tracer tracer;
      tracer.set_capacity(
          static_cast<std::size_t>(opts.get_int("trace-spans", 20000)));
      obs::Registry registry(topo);

      runtime::Machine machine(topo);
      const graph::Partition1D partition = graph::Partition1D::block(
          csr.num_vertices(), machine.num_pes());

      server::ServiceConfig config;
      config.max_inflight = inflight;
      config.cache_capacity = cache_cap;
      config.batching.max_batch = arm.batch ? max_batch : 1;
      config.landmarks.num_landmarks = arm.landmarks ? num_landmarks : 0;
      const bool verify = cell_mutation_rate == 0;
      const bool full_retained = verify && queries <= verify_full_max;
      config.retain_full_results = full_retained;
      if (observed) {
        config.registry = &registry;
        config.tracer = &tracer;
        runtime::attach_tracer(machine, tracer);
      }
      // Each cell mutates its own DynamicGraph, so dynamic mode builds a
      // fresh one from the shared edge list.  QueryService is pinned in
      // place (non-movable), hence the optional + emplace.
      std::optional<dynamic::DynamicGraph> dyn;
      std::optional<server::QueryService> service;
      if (cell_mutation_rate > 0) {
        dyn.emplace(edge_list);
        service.emplace(machine, *dyn, partition, config);
      } else {
        service.emplace(machine, csr, partition, config);
      }

      server::WorkloadConfig wl;
      wl.seed = 7;
      wl.qps = static_cast<double>(qps);
      wl.num_queries = queries;
      wl.source_universe = 48;
      wl.p2p_fraction = p2p_fraction;
      service->submit(server::generate_workload(wl, csr.num_vertices()));
      if (dyn.has_value()) {
        server::MutationWorkloadConfig mw;
        mw.seed = 13;
        mw.mutation_rate = static_cast<double>(cell_mutation_rate);
        mw.batch_size = mutation_batch;
        // Cover the query stream's offered span with mutation traffic.
        const double span_s = static_cast<double>(queries) /
                              static_cast<double>(qps);
        mw.num_batches = static_cast<std::uint64_t>(
            span_s * static_cast<double>(cell_mutation_rate) /
                static_cast<double>(mutation_batch) +
            1.0);
        service->submit_mutations(
            server::generate_mutation_stream(mw, dyn->csr()));
      }
      service->run();

      const server::ServiceSummary s = service->summary();
      if (s.completed != queries) {
        std::fprintf(stderr,
                     "FAIL: arm=%s qps=%u completed %llu of %llu\n",
                     arm.name, qps,
                     static_cast<unsigned long long>(s.completed),
                     static_cast<unsigned long long>(queries));
        return 1;
      }
      std::uint64_t verified = 0;
      if (verify) {
        verified = verify_cell(*service, refs, full_retained);
        total_verified += verified;
      }
      table.add_row(
          {arm.name, util::strformat("%u", qps),
           util::strformat("%.1f", s.throughput_qps),
           util::strformat("%.1f", s.p50_latency_us),
           util::strformat("%.1f", s.p95_latency_us),
           util::strformat("%.1f", s.p99_latency_us),
           util::strformat("%.1f", s.mean_queue_wait_us),
           util::strformat("%.3f", s.cache_hit_rate),
           util::strformat("%llu",
                           static_cast<unsigned long long>(
                               s.batches_started)),
           util::strformat("%llu", static_cast<unsigned long long>(
                                       s.landmark_exact)),
           util::strformat("%llu", static_cast<unsigned long long>(
                                       s.goal_directed)),
           util::strformat("%llu",
                           static_cast<unsigned long long>(verified))});
      if (observed) {
        bench::export_observability(opts, topo, &tracer, &registry);
      }
    }
  }

  table.print();
  std::printf("exactness gate: %llu answers verified against dedicated "
              "full-engine runs, 0 divergences\n",
              static_cast<unsigned long long>(total_verified));
  bench::write_csv(table, opts, "server_load.csv");
  return 0;
}
