// Serving-layer load bench: latency/throughput curves for the
// QueryService as offered QPS and result-cache size vary.
//
// Expected shapes (classic open-loop queueing):
//   * as offered QPS approaches the service's engine throughput, queue
//     wait — and with it p95/p99 — blows up while p50 stays flat until
//     saturation (the tail feels congestion first);
//   * a larger cache absorbs the Zipf head, raising effective capacity:
//     the same offered QPS sits further from saturation, so the knee of
//     the latency curve moves right.
//
//   ./bench/server_load [--scale N] [--queries Q] [--inflight K]
//                       [--qps a,b,c] [--caches a,b,c] [--csv PATH]
//                       [--trace-json PATH] [--obs-csv PATH]
//
// With --trace-json / --obs-csv the *last* sweep configuration runs
// with a capacity-bounded tracer and an observability registry attached
// and exports them — a long serving run records unboundedly many spans,
// so the tracer keeps a sliding window of the most recent ones
// (Tracer::set_capacity) and reports what it dropped.

#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/partition.hpp"
#include "src/runtime/machine.hpp"
#include "src/server/service.hpp"
#include "src/server/workload.hpp"

int main(int argc, char** argv) {
  using namespace acic;
  const util::Options opts(argc, argv);

  graph::GenParams params;
  params.num_vertices =
      graph::VertexId{1} << static_cast<unsigned>(opts.get_int("scale", 9));
  params.num_edges = params.num_vertices * 16ull;
  params.seed = 1;
  const graph::Csr csr =
      graph::Csr::from_edge_list(graph::generate_uniform_random(params));

  const auto queries =
      static_cast<std::uint64_t>(opts.get_int("queries", 150));
  const auto inflight =
      static_cast<std::uint32_t>(opts.get_int("inflight", 3));
  std::vector<std::uint32_t> qps_list = {250, 500, 1000, 2000, 4000};
  if (opts.has("qps")) qps_list = bench::parse_list(opts.get("qps", ""));
  std::vector<std::uint32_t> cache_list = {0, 8, 32};
  if (opts.has("caches")) {
    cache_list = bench::parse_list(opts.get("caches", ""));
  }

  std::printf("Serving-layer load sweep: scale=%d graph, %llu queries, "
              "max_inflight=%u, Topology{2,2,2}\n",
              static_cast<int>(opts.get_int("scale", 9)),
              static_cast<unsigned long long>(queries), inflight);

  util::Table table({"cache", "offered_qps", "throughput_qps", "p50_us",
                     "p95_us", "p99_us", "mean_wait_us", "max_depth",
                     "hit_rate"});

  const bool want_obs = opts.has("trace-json") || opts.has("obs-csv");
  const runtime::Topology topo{2, 2, 2};

  for (std::size_t ci = 0; ci < cache_list.size(); ++ci) {
    for (std::size_t qi = 0; qi < qps_list.size(); ++qi) {
      const std::uint32_t cache_cap = cache_list[ci];
      const std::uint32_t qps = qps_list[qi];
      // Observe the last configuration of the sweep (the most loaded).
      const bool observed = want_obs && ci + 1 == cache_list.size() &&
                            qi + 1 == qps_list.size();
      runtime::Tracer tracer;
      tracer.set_capacity(
          static_cast<std::size_t>(opts.get_int("trace-spans", 20000)));
      obs::Registry registry(topo);

      runtime::Machine machine(topo);
      const graph::Partition1D partition = graph::Partition1D::block(
          csr.num_vertices(), machine.num_pes());

      server::ServiceConfig config;
      config.max_inflight = inflight;
      config.cache_capacity = cache_cap;
      if (observed) {
        config.registry = &registry;
        config.tracer = &tracer;
        runtime::attach_tracer(machine, tracer);
      }
      server::QueryService service(machine, csr, partition, config);

      server::WorkloadConfig wl;
      wl.seed = 7;
      wl.qps = static_cast<double>(qps);
      wl.num_queries = queries;
      wl.source_universe = 32;
      service.submit(server::generate_workload(wl, csr.num_vertices()));
      service.run();

      const server::ServiceSummary s = service.summary();
      table.add_row({util::strformat("%u", cache_cap),
                     util::strformat("%u", qps),
                     util::strformat("%.1f", s.throughput_qps),
                     util::strformat("%.1f", s.p50_latency_us),
                     util::strformat("%.1f", s.p95_latency_us),
                     util::strformat("%.1f", s.p99_latency_us),
                     util::strformat("%.1f", s.mean_queue_wait_us),
                     util::strformat("%u", s.max_queue_depth),
                     util::strformat("%.3f", s.cache_hit_rate)});
      if (observed) {
        bench::export_observability(opts, topo, &tracer, &registry);
      }
    }
  }

  table.print();
  bench::write_csv(table, opts, "server_load.csv");
  return 0;
}
