// Serving-layer load bench: latency/throughput curves for the
// QueryService as offered QPS and result-cache size vary.
//
// Expected shapes (classic open-loop queueing):
//   * as offered QPS approaches the service's engine throughput, queue
//     wait — and with it p95/p99 — blows up while p50 stays flat until
//     saturation (the tail feels congestion first);
//   * a larger cache absorbs the Zipf head, raising effective capacity:
//     the same offered QPS sits further from saturation, so the knee of
//     the latency curve moves right.
//
//   ./bench/server_load [--scale N] [--queries Q] [--inflight K]
//                       [--qps a,b,c] [--caches a,b,c] [--csv PATH]
//                       [--mutation-rate R] [--mutation-batch B]
//                       [--trace-json PATH] [--obs-csv PATH]
//
// With --trace-json / --obs-csv the *last* sweep configuration runs
// with a capacity-bounded tracer and an observability registry attached
// and exports them — a long serving run records unboundedly many spans,
// so the tracer keeps a sliding window of the most recent ones
// (Tracer::set_capacity) and reports what it dropped.
//
// --mutation-rate R (edge mutations per simulated second; batches of
// --mutation-batch, default 8) switches every cell to dynamic serving:
// the service runs on a DynamicGraph and a deterministic mutation
// stream applies under load.  The churn counters
// ("server/mutations_applied", "cache/invalidations",
// "cache/stale_hits_prevented", "server/repair_queries", ...) then ride
// the --obs-csv timeseries export, and the observed cell additionally
// prints per-region cache-eviction rollups ("cache/invalidations" is
// attributed to the partition block owning each mutated edge's head).

#include <cstdio>
#include <optional>

#include "bench/bench_common.hpp"
#include "src/dynamic/dynamic_graph.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/partition.hpp"
#include "src/runtime/machine.hpp"
#include "src/server/service.hpp"
#include "src/server/workload.hpp"

int main(int argc, char** argv) {
  using namespace acic;
  const util::Options opts(argc, argv);

  graph::GenParams params;
  params.num_vertices =
      graph::VertexId{1} << static_cast<unsigned>(opts.get_int("scale", 9));
  params.num_edges = params.num_vertices * 16ull;
  params.seed = 1;
  const graph::EdgeList edge_list = graph::generate_uniform_random(params);
  const graph::Csr csr = graph::Csr::from_edge_list(edge_list);

  const auto mutation_rate =
      static_cast<std::uint32_t>(opts.get_int("mutation-rate", 0));
  const auto mutation_batch = static_cast<std::size_t>(
      opts.get_int("mutation-batch", 8));

  const auto queries =
      static_cast<std::uint64_t>(opts.get_int("queries", 150));
  const auto inflight =
      static_cast<std::uint32_t>(opts.get_int("inflight", 3));
  std::vector<std::uint32_t> qps_list = {250, 500, 1000, 2000, 4000};
  if (opts.has("qps")) qps_list = bench::parse_list(opts.get("qps", ""));
  std::vector<std::uint32_t> cache_list = {0, 8, 32};
  if (opts.has("caches")) {
    cache_list = bench::parse_list(opts.get("caches", ""));
  }

  std::printf("Serving-layer load sweep: scale=%d graph, %llu queries, "
              "max_inflight=%u, Topology{2,2,2}\n",
              static_cast<int>(opts.get_int("scale", 9)),
              static_cast<unsigned long long>(queries), inflight);

  util::Table table({"cache", "offered_qps", "throughput_qps", "p50_us",
                     "p95_us", "p99_us", "mean_wait_us", "max_depth",
                     "hit_rate", "invalidations", "repaired"});

  const bool want_obs = opts.has("trace-json") || opts.has("obs-csv");
  const runtime::Topology topo{2, 2, 2};

  for (std::size_t ci = 0; ci < cache_list.size(); ++ci) {
    for (std::size_t qi = 0; qi < qps_list.size(); ++qi) {
      const std::uint32_t cache_cap = cache_list[ci];
      const std::uint32_t qps = qps_list[qi];
      // Observe the last configuration of the sweep (the most loaded).
      const bool observed = want_obs && ci + 1 == cache_list.size() &&
                            qi + 1 == qps_list.size();
      runtime::Tracer tracer;
      tracer.set_capacity(
          static_cast<std::size_t>(opts.get_int("trace-spans", 20000)));
      obs::Registry registry(topo);

      runtime::Machine machine(topo);
      const graph::Partition1D partition = graph::Partition1D::block(
          csr.num_vertices(), machine.num_pes());

      server::ServiceConfig config;
      config.max_inflight = inflight;
      config.cache_capacity = cache_cap;
      if (observed) {
        config.registry = &registry;
        config.tracer = &tracer;
        runtime::attach_tracer(machine, tracer);
      }
      // Each cell mutates its own DynamicGraph, so dynamic mode builds a
      // fresh one from the shared edge list.  QueryService is pinned in
      // place (non-movable), hence the optional + emplace.
      std::optional<dynamic::DynamicGraph> dyn;
      std::optional<server::QueryService> service;
      if (mutation_rate > 0) {
        dyn.emplace(edge_list);
        service.emplace(machine, *dyn, partition, config);
      } else {
        service.emplace(machine, csr, partition, config);
      }

      server::WorkloadConfig wl;
      wl.seed = 7;
      wl.qps = static_cast<double>(qps);
      wl.num_queries = queries;
      wl.source_universe = 32;
      service->submit(server::generate_workload(wl, csr.num_vertices()));
      if (dyn.has_value()) {
        server::MutationWorkloadConfig mw;
        mw.seed = 13;
        mw.mutation_rate = static_cast<double>(mutation_rate);
        mw.batch_size = mutation_batch;
        // Cover the query stream's offered span with mutation traffic.
        const double span_s = static_cast<double>(queries) /
                              static_cast<double>(qps);
        mw.num_batches = static_cast<std::uint64_t>(
            span_s * static_cast<double>(mutation_rate) /
                static_cast<double>(mutation_batch) +
            1.0);
        service->submit_mutations(
            server::generate_mutation_stream(mw, dyn->csr()));
      }
      service->run();

      const server::ServiceSummary s = service->summary();
      table.add_row({util::strformat("%u", cache_cap),
                     util::strformat("%u", qps),
                     util::strformat("%.1f", s.throughput_qps),
                     util::strformat("%.1f", s.p50_latency_us),
                     util::strformat("%.1f", s.p95_latency_us),
                     util::strformat("%.1f", s.p99_latency_us),
                     util::strformat("%.1f", s.mean_queue_wait_us),
                     util::strformat("%u", s.max_queue_depth),
                     util::strformat("%.3f", s.cache_hit_rate),
                     util::strformat("%llu", static_cast<unsigned long long>(
                                                 s.cache_invalidations)),
                     util::strformat("%llu", static_cast<unsigned long long>(
                                                 s.repaired_queries))});
      if (observed) {
        bench::export_observability(opts, topo, &tracer, &registry);
        // Per-region eviction rollups: "cache/invalidations" increments
        // are attributed to the partition block (node) owning the
        // mutated edge's head vertex.
        if (mutation_rate > 0) {
          const obs::CounterId id =
              registry.counter("cache/invalidations");
          std::printf("  cache invalidations by region:");
          for (std::uint32_t n = 0; n < topo.nodes; ++n) {
            std::printf(" node%u=%llu", n,
                        static_cast<unsigned long long>(
                            registry.at(id, obs::Scope::node(n))));
          }
          std::printf("\n");
        }
      }
    }
  }

  table.print();
  bench::write_csv(table, opts, "server_load.csv");
  return 0;
}
