// Figure 1: the aggregated update-distance histogram observed at the
// root mid-run (RMAT graph, one node, p_tram = 0.1, 512 buckets).
//
// Paper shape to reproduce: a large peak of updates above t_tram (stuck
// in tram holds), a smaller peak from priority queues and pq_holds below
// it, a flat (nearly empty) region between them, and nothing below the
// lowest unprocessed bucket.
//
// The bench runs ACIC with histogram recording on, selects the snapshot
// with the greatest active-update mass ("middle of the run"), prints a
// text rendering and reports the two-peak structure quantitatively.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace acic;
  const util::Options opts(argc, argv);

  stats::ExperimentSpec spec;
  spec.graph = stats::GraphKind::kRmat;
  spec.scale = static_cast<std::uint32_t>(opts.get_int("scale", 13));
  // 6 mini-nodes = 48 PEs, matching the paper's single-node runs.
  spec.nodes = static_cast<std::uint32_t>(opts.get_int("nodes", 6));
  spec.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));

  stats::AlgoParams params;
  params.acic.p_tram = opts.get_double("p-tram", 0.1);  // the paper's fig. 1 run
  params.acic.record_histograms = true;

  std::printf(
      "Figure 1: aggregated histogram at the root, mid-run "
      "(rmat scale=%u, %u PEs, p_tram=%.2f, %zu buckets)  "
      "[paper: one 48-PE node]\n",
      spec.scale, spec.topology().num_pes(), params.acic.p_tram,
      params.acic.num_buckets);

  const graph::Csr csr = stats::build_graph(spec);
  runtime::Machine machine(spec.topology());
  const auto partition =
      graph::Partition1D::block(csr.num_vertices(), machine.num_pes());
  const core::AcicRunResult run = core::acic_sssp(
      machine, csr, partition, spec.source, params.acic);

  if (run.histograms.empty()) {
    std::printf("no snapshots recorded\n");
    return 1;
  }

  // "Middle of the run": the cycle with the largest active-update mass.
  const auto snap_it = std::max_element(
      run.histograms.begin(), run.histograms.end(),
      [](const auto& a, const auto& b) {
        return a.active_updates < b.active_updates;
      });
  const core::HistogramSnapshot& snap = *snap_it;

  std::printf("snapshot: cycle %llu of %llu, t=%.0fus, active=%.0f, "
              "t_tram=bucket %zu, t_pq=bucket %zu\n",
              static_cast<unsigned long long>(snap.cycle),
              static_cast<unsigned long long>(run.reduction_cycles),
              snap.time_us, snap.active_updates, snap.t_tram, snap.t_pq);

  // Text rendering (one row per group of buckets with any mass).
  std::size_t lowest = snap.counts.size();
  std::size_t highest = 0;
  double peak = 0.0;
  for (std::size_t b = 0; b < snap.counts.size(); ++b) {
    if (snap.counts[b] > 0.0) {
      lowest = std::min(lowest, b);
      highest = std::max(highest, b);
      peak = std::max(peak, snap.counts[b]);
    }
  }
  std::printf("lowest bucket with updates: %zu (all lower distances "
              "already processed)\n", lowest);

  util::Table table({"bucket", "count", "bar"});
  for (std::size_t b = lowest; b <= highest && b < snap.counts.size(); ++b) {
    const double c = snap.counts[b];
    const int bar = peak > 0.0 ? static_cast<int>(50.0 * c / peak) : 0;
    std::string bars(static_cast<std::size_t>(bar), '#');
    if (c > 0.0 && bar == 0) bars = ".";
    table.add_row({util::strformat("%zu", b), util::strformat("%.0f", c),
                   bars});
  }
  table.print();

  // Quantitative two-peak check: mass below t_pq vs between thresholds vs
  // above t_tram.
  double below_pq = 0.0;
  double between = 0.0;
  double above_tram = 0.0;
  for (std::size_t b = 0; b < snap.counts.size(); ++b) {
    if (b <= snap.t_pq) {
      below_pq += snap.counts[b];
    } else if (b <= snap.t_tram) {
      between += snap.counts[b];
    } else {
      above_tram += snap.counts[b];
    }
  }
  std::printf("mass below t_pq: %.0f | between thresholds: %.0f | above "
              "t_tram (tram holds): %.0f\n", below_pq, between, above_tram);
  std::printf("paper shape: the above-t_tram mass dominates and the "
              "region between the peaks stays comparatively flat\n");

  bench::write_csv([&] {
    util::Table csv({"bucket", "count"});
    for (std::size_t b = 0; b < snap.counts.size(); ++b) {
      csv.add_row({util::strformat("%zu", b),
                   util::strformat("%.0f", snap.counts[b])});
    }
    return csv;
  }(), opts, "fig1_histogram.csv");

  // Optional: the whole histogram evolution (the "evolving windows" of
  // the abstract) as a cycle x bucket matrix for external plotting.
  if (opts.has("evolution")) {
    util::Table evolution({"cycle", "time_us", "active", "t_pq", "t_tram",
                           "bucket", "count"});
    for (const auto& s : run.histograms) {
      for (std::size_t b = 0; b < s.counts.size(); ++b) {
        if (s.counts[b] == 0.0) continue;  // sparse dump
        evolution.add_row({util::strformat("%llu",
                                           (unsigned long long)s.cycle),
                           util::strformat("%.0f", s.time_us),
                           util::strformat("%.0f", s.active_updates),
                           util::strformat("%zu", s.t_pq),
                           util::strformat("%zu", s.t_tram),
                           util::strformat("%zu", b),
                           util::strformat("%.0f", s.counts[b])});
      }
    }
    const std::string path = opts.get("evolution", "fig1_evolution.csv");
    if (evolution.write_csv(path)) {
      std::printf("wrote %s (%zu rows)\n", path.c_str(),
                  evolution.num_rows());
    }
  }
  return 0;
}
