// Ablation: 1-D vs 2-D partitioning and the hybrid Bellman-Ford switch
// in distributed Δ-stepping.  The paper attributes Δ-stepping's RMAT win
// partly to the RIKEN code's 2-D decomposition (hub edges spread over a
// processor column) and partly to the hybrid tail heuristic; this bench
// separates the two effects.

#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/baselines/delta_stepping_2d.hpp"
#include "src/baselines/delta_stepping_dist.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace acic;

struct Variant {
  const char* name;
  bool two_d;
  bool hybrid;
};

double run_variant(const Variant& variant, const graph::Csr& csr,
                   const stats::ExperimentSpec& spec) {
  runtime::Machine machine(spec.topology());
  baselines::DeltaConfig config;
  config.hybrid_bellman_ford = variant.hybrid;
  if (variant.two_d) {
    const auto partition =
        graph::Partition2D::squarest(csr, machine.num_pes());
    return baselines::delta_stepping_2d(machine, csr, partition,
                                        spec.source, config)
        .sssp.metrics.sim_time_s();
  }
  const auto partition =
      graph::Partition1D::block(csr.num_vertices(), machine.num_pes());
  return baselines::delta_stepping_dist(machine, csr, partition,
                                        spec.source, config)
      .sssp.metrics.sim_time_s();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Options opts(argc, argv);
  const auto scale =
      static_cast<std::uint32_t>(opts.get_int("scale", 13));
  const auto nodes =
      static_cast<std::uint32_t>(opts.get_int("nodes", 4));
  const auto trials =
      static_cast<std::uint32_t>(opts.get_int("trials", 3));

  std::printf("Ablation: delta-stepping partitioning x hybrid switch "
              "(scale=%u, %u mini-nodes, %u trials)\n",
              scale, nodes, trials);

  const Variant variants[] = {
      {"1D, plain", false, false},
      {"1D, hybrid BF", false, true},
      {"2D, plain", true, false},
      {"2D, hybrid BF (RIKEN)", true, true},
  };

  util::Table table({"graph", "variant", "time_s"});
  for (const stats::GraphKind kind :
       {stats::GraphKind::kRandom, stats::GraphKind::kRmat}) {
    for (const Variant& variant : variants) {
      double time_s = 0.0;
      for (std::uint32_t trial = 0; trial < trials; ++trial) {
        stats::ExperimentSpec spec;
        spec.graph = kind;
        spec.scale = scale;
        spec.nodes = nodes;
        spec.seed = util::derive_seed(31, trial);
        const graph::Csr csr = stats::build_graph(spec);
        time_s += run_variant(variant, csr, spec);
      }
      table.add_row({stats::graph_kind_name(kind), variant.name,
                     util::strformat("%.5f", time_s / trials)});
    }
  }
  table.print();
  std::printf("expected: 2D helps most on rmat (hub balance); the hybrid "
              "switch helps the high-diameter tail\n");
  bench::write_csv(table, opts, "ablation_partition.csv");
  return 0;
}
