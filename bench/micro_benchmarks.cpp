// google-benchmark micro suite: wall-clock throughput of the library's
// hot substrates — event loop, tram aggregation, reductions, graph
// generation, sequential SSSP kernels.  These measure the *simulator's*
// real performance (how fast experiments run on the host), complementing
// the fig*/ablation harnesses which measure *simulated* time.

#include <benchmark/benchmark.h>

#include "src/baselines/sequential.hpp"
#include "src/obs/registry.hpp"
#include "src/core/histogram.hpp"
#include "src/core/thresholds.hpp"
#include "src/graph/generators.hpp"
#include "src/runtime/collectives.hpp"
#include "src/runtime/machine.hpp"
#include "src/tram/tram.hpp"
#include "src/util/prefetch.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace acic;
using runtime::Machine;
using runtime::Pe;
using runtime::PeId;
using runtime::Topology;

void BM_MachineEventThroughput(benchmark::State& state) {
  const auto events = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    Machine machine(Topology::tiny(4));
    std::uint64_t executed = 0;
    for (std::uint64_t i = 0; i < events; ++i) {
      machine.schedule_at(static_cast<double>(i), i % 4,
                          [&executed](Pe&) { ++executed; });
    }
    machine.run();
    benchmark::DoNotOptimize(executed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events) *
                          state.iterations());
}
BENCHMARK(BM_MachineEventThroughput)->Arg(1 << 12)->Arg(1 << 15);

// Observability cost on the event-loop hot path: the same workload as
// BM_MachineEventThroughput with a registry attached (Arg(1)) vs not
// (Arg(0)).  The attached run exercises the per-event counter adds plus
// the batched ready-depth series sampling; the detached run measures the
// cost of the registry branch alone.  The two should stay within a few
// percent of each other (docs/performance.md tracks the target).
void BM_MachineObsOverhead(benchmark::State& state) {
  const bool attach = state.range(0) != 0;
  constexpr std::uint64_t kEvents = 1 << 14;
  for (auto _ : state) {
    Machine machine(Topology::tiny(4));
    obs::Registry registry(machine.topology());
    if (attach) machine.set_registry(&registry);
    std::uint64_t executed = 0;
    for (std::uint64_t i = 0; i < kEvents; ++i) {
      machine.schedule_at(static_cast<double>(i), i % 4,
                          [&executed](Pe&) { ++executed; });
    }
    machine.run();
    benchmark::DoNotOptimize(executed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(kEvents) *
                          state.iterations());
  state.SetLabel(attach ? "registry_attached" : "registry_detached");
}
BENCHMARK(BM_MachineObsOverhead)->Arg(0)->Arg(1);

void BM_MessageRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    Machine machine(Topology{2, 1, 1});
    int bounces = 0;
    std::function<void(Pe&)> bounce = [&](Pe& pe) {
      if (++bounces >= 100) return;
      pe.send(1 - pe.id(), 64, [&](Pe& other) { bounce(other); });
    };
    machine.schedule_at(0.0, 0, [&](Pe& pe) { bounce(pe); });
    machine.run();
    benchmark::DoNotOptimize(bounces);
  }
  state.SetItemsProcessed(100 * state.iterations());
}
BENCHMARK(BM_MessageRoundTrip);

void BM_TramInsertFlush(benchmark::State& state) {
  const auto items = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    Machine machine(Topology{1, 2, 4});
    std::uint64_t delivered = 0;
    tram::TramConfig config;
    config.buffer_items = 256;
    tram::Tram<std::uint64_t> tram(
        machine, config,
        [&delivered](Pe&, const std::uint64_t&) { ++delivered; });
    machine.schedule_at(0.0, 0, [&](Pe& pe) {
      for (std::uint64_t i = 0; i < items; ++i) {
        tram.insert(pe, static_cast<PeId>(i % machine.num_pes()), i);
      }
      tram.flush_all(pe);
    });
    machine.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(items) *
                          state.iterations());
}
BENCHMARK(BM_TramInsertFlush)->Arg(1 << 10)->Arg(1 << 14);

void BM_ReductionCycle(benchmark::State& state) {
  const auto pes = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    Machine machine(Topology::tiny(pes));
    runtime::Reducer reducer(
        machine, 8,
        [](Pe&, std::uint64_t,
           const std::vector<double>&) -> std::optional<std::vector<double>> {
          return std::nullopt;
        },
        [](Pe&, std::uint64_t, const std::vector<double>&) {});
    for (PeId p = 0; p < pes; ++p) {
      machine.schedule_at(0.0, p, [&reducer](Pe& pe) {
        reducer.contribute(pe, std::vector<double>(8, 1.0));
      });
    }
    machine.run();
    benchmark::DoNotOptimize(reducer.cycles_completed());
  }
}
BENCHMARK(BM_ReductionCycle)->Arg(16)->Arg(64)->Arg(256);

void BM_GenerateRmat(benchmark::State& state) {
  graph::GenParams params;
  params.num_vertices = 1u << static_cast<std::uint32_t>(state.range(0));
  params.num_edges = params.num_vertices * 16ull;
  for (auto _ : state) {
    auto list = graph::generate_rmat(params);
    benchmark::DoNotOptimize(list.num_edges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(params.num_edges) *
                          state.iterations());
}
BENCHMARK(BM_GenerateRmat)->Arg(12)->Arg(14);

void BM_GenerateUniformRandom(benchmark::State& state) {
  graph::GenParams params;
  params.num_vertices = 1u << static_cast<std::uint32_t>(state.range(0));
  params.num_edges = params.num_vertices * 16ull;
  for (auto _ : state) {
    auto list = graph::generate_uniform_random(params);
    benchmark::DoNotOptimize(list.num_edges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(params.num_edges) *
                          state.iterations());
}
BENCHMARK(BM_GenerateUniformRandom)->Arg(12)->Arg(14);

void BM_CsrBuild(benchmark::State& state) {
  graph::GenParams params;
  params.num_vertices = 1u << 13;
  params.num_edges = 1u << 17;
  const auto list = graph::generate_uniform_random(params);
  for (auto _ : state) {
    auto csr = graph::Csr::from_edge_list(list);
    benchmark::DoNotOptimize(csr.num_edges());
  }
}
BENCHMARK(BM_CsrBuild);

void BM_DijkstraSequential(benchmark::State& state) {
  graph::GenParams params;
  params.num_vertices = 1u << static_cast<std::uint32_t>(state.range(0));
  params.num_edges = params.num_vertices * 16ull;
  const auto csr =
      graph::Csr::from_edge_list(graph::generate_uniform_random(params));
  for (auto _ : state) {
    auto dist = baselines::dijkstra(csr, 0);
    benchmark::DoNotOptimize(dist.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(csr.num_edges()) *
                          state.iterations());
}
BENCHMARK(BM_DijkstraSequential)->Arg(12)->Arg(14);

void BM_DeltaSteppingSequential(benchmark::State& state) {
  graph::GenParams params;
  params.num_vertices = 1u << 13;
  params.num_edges = 1u << 17;
  const auto csr =
      graph::Csr::from_edge_list(graph::generate_uniform_random(params));
  for (auto _ : state) {
    auto dist = baselines::delta_stepping_seq(csr, 0);
    benchmark::DoNotOptimize(dist.data());
  }
}
BENCHMARK(BM_DeltaSteppingSequential);

// Prefetch-distance sweep over the update-application loop (the tram
// delivery -> state.dist[local] apply path, including the CSR offsets
// touch an arrival-time expansion does).  The graph is sized well past
// LLC so every update is a cold random access, like a real delivery
// batch mid-query.  Arg = how many items ahead the next update's
// distance slot and offsets entry are prefetched; Arg(0) is the
// no-prefetch baseline.  util::kDeliverPrefetchLookahead is chosen from
// this curve (docs/performance.md "Locality" records the numbers).
void BM_UpdateApplyPrefetch(benchmark::State& state) {
  const auto lookahead = static_cast<std::size_t>(state.range(0));
  constexpr std::uint32_t kVerts = 1u << 20;
  constexpr std::size_t kUpdates = 1u << 20;
  struct Upd {
    std::uint32_t vertex;
    double dist;
  };
  // Built once, shared across all Args: a uniform graph (so rows are
  // short and the dist/offsets misses dominate, as in the apply loop)
  // and a fixed random update stream.
  static const graph::Csr csr = [] {
    graph::GenParams params;
    params.num_vertices = kVerts;
    params.num_edges = static_cast<std::size_t>(kVerts) * 4;
    params.seed = 7;
    return graph::Csr::from_edge_list(graph::generate_uniform_random(params));
  }();
  static const std::vector<Upd> updates = [] {
    std::vector<Upd> stream;
    stream.reserve(kUpdates);
    acic::util::Xoshiro256 rng(11);
    for (std::size_t i = 0; i < kUpdates; ++i) {
      stream.push_back(Upd{static_cast<std::uint32_t>(
                               rng.next_below(kVerts)),
                           rng.next_double(0.0, 1000.0)});
    }
    return stream;
  }();
  std::vector<double> dist(kVerts, 1e300);
  const std::size_t* offsets = csr.offsets().data();
  for (auto _ : state) {
    double acc = 0.0;
    for (std::size_t i = 0; i < kUpdates; ++i) {
      if (lookahead != 0 && i + lookahead < kUpdates) {
        const std::uint32_t ahead = updates[i + lookahead].vertex;
        util::prefetch_read(dist.data() + ahead);
        util::prefetch_read(offsets + ahead);
      }
      const Upd& u = updates[i];
      if (u.dist < dist[u.vertex]) dist[u.vertex] = u.dist;
      // Arrival-time expansion: walk the row like kla/dc's on_deliver.
      for (const graph::Neighbor& nb : csr.out_neighbors(u.vertex)) {
        acc += nb.weight;
      }
    }
    benchmark::DoNotOptimize(acc);
    benchmark::DoNotOptimize(dist.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(kUpdates) *
                          state.iterations());
  state.SetLabel("lookahead=" + std::to_string(lookahead));
}
BENCHMARK(BM_UpdateApplyPrefetch)
    ->Arg(0)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16);

void BM_HistogramOps(benchmark::State& state) {
  core::UpdateHistogram histogram(512, 0.0, 1u << 20);
  acic::util::Xoshiro256 rng(5);
  for (auto _ : state) {
    const double d = rng.next_double(0.0, 10000.0);
    const std::size_t b = histogram.bucket_of(d);
    histogram.increment(b);
    histogram.decrement(b);
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(BM_HistogramOps);

void BM_ThresholdWalk(benchmark::State& state) {
  std::vector<double> histogram(512);
  acic::util::Xoshiro256 rng(6);
  double total = 0.0;
  for (auto& c : histogram) {
    c = static_cast<double>(rng.next_below(1000));
    total += c;
  }
  for (auto _ : state) {
    const auto b = core::bucket_at_fraction(histogram, 0.999, total);
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(BM_ThresholdWalk);

}  // namespace

BENCHMARK_MAIN();
