// Future work (§V): asynchronous connected components with continuous
// introspection vs bulk-synchronous label propagation.
//
// The paper proposes carrying ACIC's reduction/broadcast machinery to
// the connected-components problem on random graphs.  This bench runs
// both implementations over a density sweep (sparse graphs have many
// components and long label-propagation chains, where asynchrony pays
// most).

#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/cc/async_cc.hpp"
#include "src/cc/bsp_cc.hpp"
#include "src/cc/union_find.hpp"
#include "src/graph/generators.hpp"
#include "src/util/rng.hpp"

int main(int argc, char** argv) {
  using namespace acic;
  const util::Options opts(argc, argv);
  const auto scale =
      static_cast<std::uint32_t>(opts.get_int("scale", 13));
  const auto nodes =
      static_cast<std::uint32_t>(opts.get_int("nodes", 4));
  const auto trials =
      static_cast<std::uint32_t>(opts.get_int("trials", 3));

  std::printf("Future work: asynchronous vs BSP connected components "
              "(random graphs, scale=%u, %u mini-nodes, %u trials)\n",
              scale, nodes, trials);

  util::Table table({"edge_factor", "components", "async_time_s",
                     "bsp_time_s", "async_speedup", "bsp_supersteps",
                     "async_updates", "bsp_updates"});
  for (const std::uint32_t edge_factor : {1u, 2u, 4u, 8u}) {
    double async_time = 0.0;
    double bsp_time = 0.0;
    double components = 0.0;
    double supersteps = 0.0;
    double async_updates = 0.0;
    double bsp_updates = 0.0;
    bool all_match = true;
    for (std::uint32_t trial = 0; trial < trials; ++trial) {
      graph::GenParams params;
      params.num_vertices = graph::VertexId{1} << scale;
      params.num_edges =
          static_cast<std::uint64_t>(edge_factor) * params.num_vertices;
      params.seed = util::derive_seed(47, trial);
      const graph::Csr csr = graph::Csr::from_edge_list(
          graph::generate_uniform_random(params).symmetrized());
      const auto expected = cc::connected_components(csr);
      components += static_cast<double>(cc::count_components(expected));

      const runtime::Topology topo{nodes, 2, 4};
      const auto partition = graph::Partition1D::block(
          csr.num_vertices(), topo.num_pes());

      runtime::Machine m1(topo);
      const auto async_result =
          cc::async_cc(m1, csr, partition, {}, 600e6);
      runtime::Machine m2(topo);
      const auto bsp_result = cc::bsp_cc(m2, csr, partition, {}, 600e6);

      all_match &= async_result.labels == expected &&
                   bsp_result.labels == expected;
      async_time += async_result.sim_time_us * 1e-6;
      bsp_time += bsp_result.sim_time_us * 1e-6;
      supersteps += static_cast<double>(bsp_result.supersteps);
      async_updates += static_cast<double>(async_result.updates_created);
      bsp_updates += static_cast<double>(bsp_result.updates_created);
    }
    if (!all_match) {
      std::printf("LABEL MISMATCH at edge_factor %u\n", edge_factor);
      return 1;
    }
    table.add_row(
        {util::strformat("%u", edge_factor),
         util::strformat("%.0f", components / trials),
         util::strformat("%.5f", async_time / trials),
         util::strformat("%.5f", bsp_time / trials),
         util::strformat("%.2fx", bsp_time / async_time),
         util::strformat("%.0f", supersteps / trials),
         util::strformat("%.0f", async_updates / trials),
         util::strformat("%.0f", bsp_updates / trials)});
  }
  table.print();
  std::printf("all label vectors verified against union-find\n");
  bench::write_csv(table, opts, "futurework_cc.csv");
  return 0;
}
