// Figure 3: overhead of the continuous reduction/broadcast cycle.
//
// Following the paper's standalone experiment: each PE repeatedly
// executes 10-microsecond work methods over a 5-second (simulated)
// window; we count methods executed with and without a concurrent
// reduction/broadcast cycle and report the percentage loss in completed
// work, normalized by the number of reductions that occurred.
//
// Paper shape to reproduce: each reduction-per-second costs only
// ~0.0015–0.0035% of the work — reductions are effectively free next to
// the computation they steer.

#include <cstdio>
#include <optional>

#include "bench/bench_common.hpp"
#include "src/runtime/collectives.hpp"

namespace {

using namespace acic;
using runtime::Machine;
using runtime::Pe;
using runtime::PeId;
using runtime::SimTime;

struct WorkResult {
  std::uint64_t methods = 0;
  std::uint64_t reductions = 0;
};

/// Runs the synthetic workload; `histogram_width` > 0 enables a
/// continuous reduction/broadcast cycle with an ACIC-sized payload.
WorkResult run_window(std::uint32_t nodes, SimTime window_us,
                      SimTime method_us, std::size_t histogram_width,
                      SimTime interval_us) {
  Machine machine(runtime::Topology::paper_node(nodes));
  std::uint64_t methods = 0;

  for (PeId p = 0; p < machine.num_pes(); ++p) {
    machine.add_idle_handler(p, [&methods, method_us](Pe& pe) {
      pe.charge(method_us);
      ++methods;
      return true;
    });
    machine.schedule_at(0.0, p, [](Pe&) {});
  }

  std::optional<runtime::Reducer> reducer;
  if (histogram_width > 0) {
    reducer.emplace(
        machine, histogram_width,
        [histogram_width](Pe&, std::uint64_t, const std::vector<double>&)
            -> std::optional<std::vector<double>> {
          return std::vector<double>(3, 0.0);
        },
        [&machine, &reducer, interval_us, histogram_width](
            Pe& pe, std::uint64_t, const std::vector<double>&) {
          const PeId id = pe.id();
          machine.schedule_at(
              pe.now() + interval_us, id,
              [&reducer, histogram_width](Pe& next) {
                reducer->contribute(
                    next, std::vector<double>(histogram_width, 1.0));
              });
        });
    for (PeId p = 0; p < machine.num_pes(); ++p) {
      machine.schedule_at(0.0, p, [&reducer, histogram_width](Pe& pe) {
        reducer->contribute(pe,
                            std::vector<double>(histogram_width, 1.0));
      });
    }
  }

  machine.run(window_us);
  WorkResult result;
  result.methods = methods;
  result.reductions = reducer ? reducer->cycles_completed() : 0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Options opts(argc, argv);
  const double window_s = opts.get_double("window", 0.25);  // paper: 5s
  const SimTime window_us = window_s * 1e6;
  const SimTime method_us = opts.get_double("method-us", 10.0);
  const auto width =
      static_cast<std::size_t>(opts.get_int("width", 514));
  const SimTime interval_us = opts.get_double("interval", 100.0);

  std::printf("Figure 3: reduction overhead (10us methods, %.1fs window, "
              "payload width %zu)\n", window_s, width);

  util::Table table({"pes", "methods_off", "methods_on", "reductions",
                     "red_per_s", "loss_pct", "loss_pct_per_red_per_s"});
  for (const std::uint32_t nodes : {1u, 2u, 4u}) {
    const WorkResult off =
        run_window(nodes, window_us, method_us, 0, interval_us);
    const WorkResult on =
        run_window(nodes, window_us, method_us, width, interval_us);
    const double loss_pct =
        100.0 *
        (static_cast<double>(off.methods) - static_cast<double>(on.methods)) /
        static_cast<double>(off.methods);
    const double red_per_s =
        static_cast<double>(on.reductions) / window_s;
    const double normalized = red_per_s > 0.0 ? loss_pct / red_per_s / window_s
                                              : 0.0;
    table.add_row(
        {util::strformat("%u", nodes * 48),
         util::strformat("%llu", (unsigned long long)off.methods),
         util::strformat("%llu", (unsigned long long)on.methods),
         util::strformat("%llu", (unsigned long long)on.reductions),
         util::strformat("%.1f", red_per_s),
         util::strformat("%.4f", loss_pct),
         util::strformat("%.6f", normalized)});
  }
  table.print();
  std::printf("paper shape: loss per (reduction/second) stays tiny "
              "(paper: 0.0015%%-0.0035%%), so continuous introspection is "
              "nearly free\n");
  bench::write_csv(table, opts, "fig3_reduction_overhead.csv");
  return 0;
}
