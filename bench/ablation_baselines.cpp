// Ablation / positioning: every SSSP algorithm in the repository on the
// same workloads — ACIC, RIKEN-style 2-D hybrid Δ-stepping, 1-D
// Δ-stepping, KLA, distributed control, and the §II.A asynchronous
// baseline.  This is the panorama of the paper's related-work section.

#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/util/rng.hpp"

int main(int argc, char** argv) {
  using namespace acic;
  const util::Options opts(argc, argv);
  const auto scale =
      static_cast<std::uint32_t>(opts.get_int("scale", 13));
  const auto nodes =
      static_cast<std::uint32_t>(opts.get_int("nodes", 4));
  const auto trials =
      static_cast<std::uint32_t>(opts.get_int("trials", 3));

  std::printf("All algorithms on the paper workloads (scale=%u, %u "
              "mini-nodes, %u trials)\n", scale, nodes, trials);

  const stats::Algo algos[] = {
      stats::Algo::kAcic,         stats::Algo::kRiken,
      stats::Algo::kDelta1D,      stats::Algo::kKla,
      stats::Algo::kDistControl,  stats::Algo::kAsyncBaseline,
  };

  util::Table table({"graph", "algorithm", "time_s", "updates_created",
                     "wasted_pct", "sync_cycles"});
  for (const stats::GraphKind kind :
       {stats::GraphKind::kRandom, stats::GraphKind::kRmat}) {
    for (const stats::Algo algo : algos) {
      double time_s = 0.0;
      double created = 0.0;
      double wasted = 0.0;
      double cycles = 0.0;
      for (std::uint32_t trial = 0; trial < trials; ++trial) {
        stats::ExperimentSpec spec;
        spec.graph = kind;
        spec.scale = scale;
        spec.nodes = nodes;
        spec.seed = util::derive_seed(37, trial);
        const auto outcome = stats::run_experiment(algo, spec);
        time_s += outcome.sssp.metrics.sim_time_s();
        created += static_cast<double>(outcome.sssp.metrics.updates_created);
        wasted += outcome.sssp.metrics.wasted_fraction();
        cycles += static_cast<double>(outcome.cycles);
      }
      table.add_row({stats::graph_kind_name(kind), stats::algo_name(algo),
                     util::strformat("%.5f", time_s / trials),
                     util::strformat("%.0f", created / trials),
                     util::strformat("%.1f%%", 100.0 * wasted / trials),
                     util::strformat("%.0f", cycles / trials)});
    }
  }
  table.print();
  bench::write_csv(table, opts, "ablation_baselines.csv");
  return 0;
}
