// Ablation / positioning: every SSSP solver in the registry on the same
// workloads — ACIC, RIKEN-style 2-D hybrid Δ-stepping, 1-D Δ-stepping,
// KLA, distributed control, and the §II.A asynchronous baseline.  This
// is the panorama of the paper's related-work section, dispatched
// through sssp::run_solver so the table covers whatever is registered.

#include <cstdio>
#include <string>

#include "bench/bench_common.hpp"
#include "src/sssp/solver.hpp"
#include "src/util/rng.hpp"

int main(int argc, char** argv) {
  using namespace acic;
  const util::Options opts(argc, argv);
  const auto scale =
      static_cast<std::uint32_t>(opts.get_int("scale", 13));
  const auto nodes =
      static_cast<std::uint32_t>(opts.get_int("nodes", 4));
  const auto trials =
      static_cast<std::uint32_t>(opts.get_int("trials", 3));

  std::printf("All solvers on the paper workloads (scale=%u, %u "
              "mini-nodes, %u trials)\n", scale, nodes, trials);

  // Registry order, skipping the sequential oracle.  The 1-D entry runs
  // without the hybrid Bellman-Ford tail so it stays the pure
  // Δ-stepping comparison point (the 2-D entry keeps it).
  std::vector<std::string> solvers;
  for (const std::string& name : sssp::solver_names()) {
    if (name != "sequential") solvers.push_back(name);
  }

  util::Table table({"graph", "solver", "time_s", "updates_created",
                     "wasted_pct", "sync_cycles"});
  for (const stats::GraphKind kind :
       {stats::GraphKind::kRandom, stats::GraphKind::kRmat}) {
    for (const std::string& name : solvers) {
      double time_s = 0.0;
      double created = 0.0;
      double wasted = 0.0;
      double cycles = 0.0;
      for (std::uint32_t trial = 0; trial < trials; ++trial) {
        stats::ExperimentSpec spec;
        spec.graph = kind;
        spec.scale = scale;
        spec.nodes = nodes;
        spec.seed = util::derive_seed(37, trial);
        const graph::Csr csr = stats::build_graph(spec);
        runtime::Machine machine(spec.topology());
        sssp::SolverOptions solver_opts;
        if (name == "delta_stepping_dist") {
          solver_opts.delta.hybrid_bellman_ford = false;
        }
        const auto run = sssp::run_solver(name, machine, csr,
                                          spec.source, solver_opts);
        time_s += run.sssp.metrics.sim_time_s();
        created += static_cast<double>(run.sssp.metrics.updates_created);
        wasted += run.sssp.metrics.wasted_fraction();
        cycles += static_cast<double>(run.telemetry.cycles);
      }
      table.add_row({stats::graph_kind_name(kind), name,
                     util::strformat("%.5f", time_s / trials),
                     util::strformat("%.0f", created / trials),
                     util::strformat("%.1f%%", 100.0 * wasted / trials),
                     util::strformat("%.0f", cycles / trials)});
    }
  }
  table.print();
  bench::write_csv(table, opts, "ablation_baselines.csv");
  return 0;
}
