// Dynamic-graph bench: where does incremental repair beat recompute?
//
// Part 1 — solver arms.  The same deterministic mutation stream drives
// two IncrementalSssp instances over identical graphs: the *repair* arm
// (warm starts from the invalidated boundary, recompute only past the
// subtree-fraction threshold) and the *recompute* arm
// (recompute_fraction = 0, every refresh is a cold solve).  The figure
// of merit is the paper's primary work metric — updates created — plus
// host wall-clock.  After every batch both arms are checked elementwise
// against sequential Dijkstra; any divergence prints the offending
// epoch and exits nonzero (this is the CI smoke gate).
//
// Expected shape: at small batch sizes most batches disturb no tree
// edge (refresh skipped — zero engine work) or a small subtree, so the
// repair arm does orders of magnitude fewer updates; as the batch size
// grows, the union of invalidated subtrees approaches the whole graph
// and the arms converge (the planner itself starts falling back).
//
// Part 2 — serving under churn.  A QueryService on a DynamicGraph takes
// a query stream and a mutation stream simultaneously, sweeping
// mutation rate x offered QPS x batch size; reported per cell: p95
// latency, cache hit rate, invalidations, warm-repaired queries, and
// stale results dropped.  Rising mutation rate erodes the cache (more
// invalidations, lower hit rate) but warm repair claws back part of the
// loss — repaired queries complete without a cold engine.
//
//   ./bench/dynamic_mutation [--scale N] [--batches B]
//                            [--batch-sizes a,b,c] [--rates a,b,c]
//                            [--qps a,b,c] [--queries Q] [--seed S]
//                            [--csv PATH] [--smoke]
//
// --smoke shrinks everything for CI: one small graph, short streams,
// both parts still fully verified.

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench/bench_common.hpp"
#include "src/baselines/sequential.hpp"
#include "src/dynamic/dynamic_graph.hpp"
#include "src/dynamic/incremental.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/partition.hpp"
#include "src/graph/validate.hpp"
#include "src/runtime/machine.hpp"
#include "src/server/service.hpp"
#include "src/server/workload.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

acic::graph::EdgeList make_list(std::uint32_t scale, std::uint64_t seed) {
  acic::graph::GenParams params;
  params.num_vertices = acic::graph::VertexId{1} << scale;
  params.num_edges = params.num_vertices * 8ull;
  params.seed = seed;
  return acic::graph::generate_uniform_random(params);
}

struct ArmResult {
  std::uint64_t updates = 0;
  std::uint64_t repairs = 0;
  std::uint64_t recomputes = 0;
  std::uint64_t skipped = 0;
  std::uint64_t affected_total = 0;
  double wall_s = 0.0;
};

/// Replays `events` through one IncrementalSssp arm, verifying the
/// distances elementwise against Dijkstra after every batch.  Exits the
/// process with status 1 on any divergence.
ArmResult run_arm(const char* name, std::uint32_t scale,
                  std::uint64_t seed, double recompute_fraction,
                  const std::vector<acic::server::MutationEvent>& events) {
  using namespace acic;
  dynamic::DynamicGraph graph(make_list(scale, seed));
  dynamic::IncrementalConfig config;
  config.topology = runtime::Topology::tiny(4);
  config.recompute_fraction = recompute_fraction;
  const auto start = Clock::now();
  dynamic::IncrementalSssp solver(graph, /*source=*/0, config);
  ArmResult out;
  for (const server::MutationEvent& event : events) {
    graph.apply(event.batch);
    const dynamic::RefreshStats stats = solver.refresh();
    if (stats.skipped) ++out.skipped;
    out.affected_total += stats.affected;
    const auto check = graph::compare_distances(
        solver.state().dist, baselines::dijkstra(graph.csr(), 0));
    if (!check.ok) {
      std::fprintf(stderr,
                   "FAIL: %s arm diverged from Dijkstra at epoch %llu "
                   "(scale %u, seed %llu): %s\n",
                   name,
                   static_cast<unsigned long long>(stats.to_epoch), scale,
                   static_cast<unsigned long long>(seed),
                   check.error.c_str());
      std::exit(1);
    }
  }
  out.wall_s = seconds_since(start);
  out.updates = solver.total_updates_created();
  out.repairs = solver.repair_count();
  out.recomputes = solver.recompute_count();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace acic;
  const util::Options opts(argc, argv);
  const bool smoke = opts.get_bool("smoke", false);

  const auto scale = static_cast<std::uint32_t>(
      opts.get_int("scale", smoke ? 8 : 11));
  const auto batches = static_cast<std::uint64_t>(
      opts.get_int("batches", smoke ? 12 : 40));
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));

  std::vector<std::uint32_t> batch_sizes =
      smoke ? std::vector<std::uint32_t>{4, 64}
            : std::vector<std::uint32_t>{1, 4, 16, 64, 256};
  if (opts.has("batch-sizes")) {
    batch_sizes = bench::parse_list(opts.get("batch-sizes", ""),
                                    "batch-sizes");
  }

  // ---- part 1: repair vs recompute over identical streams -------------
  std::printf("Incremental repair vs recompute: scale=%u (|V|=%u), "
              "%llu batches per size, seed=%llu\n",
              scale, 1u << scale,
              static_cast<unsigned long long>(batches),
              static_cast<unsigned long long>(seed));

  util::Table arms({"batch_size", "repair_updates", "recompute_updates",
                    "update_ratio", "repairs", "recomputes", "skipped",
                    "mean_affected", "repair_wall_s", "recompute_wall_s"});
  for (const std::uint32_t batch_size : batch_sizes) {
    server::MutationWorkloadConfig mw;
    mw.seed = seed + batch_size;  // distinct stream per size
    mw.batch_size = batch_size;
    mw.num_batches = batches;
    const graph::Csr base = graph::Csr::from_edge_list(
        make_list(scale, seed));
    const auto events = server::generate_mutation_stream(mw, base);

    const ArmResult repair =
        run_arm("repair", scale, seed, /*recompute_fraction=*/0.25,
                events);
    const ArmResult recompute =
        run_arm("recompute", scale, seed, /*recompute_fraction=*/0.0,
                events);

    const double ratio =
        recompute.updates > 0
            ? static_cast<double>(repair.updates) /
                  static_cast<double>(recompute.updates)
            : 0.0;
    const double mean_affected =
        batches > 0 ? static_cast<double>(repair.affected_total) /
                          static_cast<double>(batches)
                    : 0.0;
    arms.add_row({util::strformat("%u", batch_size),
                  util::strformat("%llu", static_cast<unsigned long long>(
                                              repair.updates)),
                  util::strformat("%llu", static_cast<unsigned long long>(
                                              recompute.updates)),
                  util::strformat("%.4f", ratio),
                  util::strformat("%llu", static_cast<unsigned long long>(
                                              repair.repairs)),
                  util::strformat("%llu", static_cast<unsigned long long>(
                                              repair.recomputes)),
                  util::strformat("%llu", static_cast<unsigned long long>(
                                              repair.skipped)),
                  util::strformat("%.1f", mean_affected),
                  util::strformat("%.3f", repair.wall_s),
                  util::strformat("%.3f", recompute.wall_s)});
  }
  arms.print();
  std::printf("all epochs verified elementwise against Dijkstra\n\n");

  // ---- part 2: serving under churn ------------------------------------
  std::vector<std::uint32_t> rates =
      smoke ? std::vector<std::uint32_t>{2000}
            : std::vector<std::uint32_t>{0, 500, 2000, 8000};
  if (opts.has("rates")) {
    rates = bench::parse_list(opts.get("rates", ""), "rates");
  }
  std::vector<std::uint32_t> qps_list =
      smoke ? std::vector<std::uint32_t>{1000}
            : std::vector<std::uint32_t>{500, 2000};
  if (opts.has("qps")) {
    qps_list = bench::parse_list(opts.get("qps", ""), "qps");
  }
  std::vector<std::uint32_t> serve_batch_sizes =
      smoke ? std::vector<std::uint32_t>{8}
            : std::vector<std::uint32_t>{4, 32};
  const auto queries = static_cast<std::uint64_t>(
      opts.get_int("queries", smoke ? 40 : 120));

  std::printf("Serving under churn: %llu queries, Topology{2,2,2}, "
              "sweep rate x qps x batch\n",
              static_cast<unsigned long long>(queries));
  util::Table serving({"mut_per_s", "qps", "batch", "p50_us", "p95_us",
                       "hit_rate", "invalidations", "repaired",
                       "stale_prevented", "stale_dropped"});
  const runtime::Topology topo{2, 2, 2};
  for (const std::uint32_t rate : rates) {
    for (const std::uint32_t qps : qps_list) {
      for (const std::uint32_t batch_size : serve_batch_sizes) {
        if (rate == 0 && batch_size != serve_batch_sizes.front()) {
          continue;  // batch size is meaningless with no mutations
        }
        dynamic::DynamicGraph graph(make_list(scale, seed));
        runtime::Machine machine(topo);
        const graph::Partition1D partition = graph::Partition1D::block(
            graph.num_vertices(), machine.num_pes());

        server::ServiceConfig config;
        config.max_inflight = 3;
        config.cache_capacity = 32;
        server::QueryService service(machine, graph, partition, config);

        server::WorkloadConfig wl;
        wl.seed = seed + 7;
        wl.qps = static_cast<double>(qps);
        wl.num_queries = queries;
        wl.source_universe = 16;
        service.submit(server::generate_workload(wl, graph.num_vertices()));
        if (rate > 0) {
          server::MutationWorkloadConfig mw;
          mw.seed = seed + 13;
          mw.mutation_rate = static_cast<double>(rate);
          mw.batch_size = batch_size;
          // Cover the whole query stream's span with mutation traffic.
          const double span_s =
              static_cast<double>(queries) / static_cast<double>(qps);
          mw.num_batches = static_cast<std::uint64_t>(
              span_s * static_cast<double>(rate) /
                  static_cast<double>(batch_size) +
              1.0);
          service.submit_mutations(
              server::generate_mutation_stream(mw, graph.csr()));
        }
        service.run();

        const server::ServiceSummary s = service.summary();
        serving.add_row(
            {util::strformat("%u", rate), util::strformat("%u", qps),
             util::strformat("%u", batch_size),
             util::strformat("%.1f", s.p50_latency_us),
             util::strformat("%.1f", s.p95_latency_us),
             util::strformat("%.3f", s.cache_hit_rate),
             util::strformat("%llu", static_cast<unsigned long long>(
                                         s.cache_invalidations)),
             util::strformat("%llu", static_cast<unsigned long long>(
                                         s.repaired_queries)),
             util::strformat("%llu", static_cast<unsigned long long>(
                                         s.stale_hits_prevented)),
             util::strformat("%llu", static_cast<unsigned long long>(
                                         service.stale_results_dropped()))});
        if (s.completed != queries) {
          std::fprintf(stderr,
                       "FAIL: serving cell rate=%u qps=%u batch=%u "
                       "completed %llu of %llu queries\n",
                       rate, qps, batch_size,
                       static_cast<unsigned long long>(s.completed),
                       static_cast<unsigned long long>(queries));
          return 1;
        }
      }
    }
  }
  serving.print();
  bench::write_csv(serving, opts, "dynamic_mutation.csv");
  std::printf("ok\n");
  return 0;
}
