// Figure 6: effect of the tramlib buffer size (auto-flush threshold) at
// various node counts, on a random graph.
//
// Paper shape to reproduce: the optimal buffer size *decreases* as the
// node count grows — with more PEs there are more (and thus
// slower-filling) buffers, so large buffers strand updates and increase
// latency, while at small node counts large buffers amortize best.
// The paper sweeps {512, 1024, 2048} at scale 26; the simulation's graph
// is far smaller, so the sweep includes smaller sizes and the crossover
// appears at proportionally smaller buffer values.

#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/util/rng.hpp"

int main(int argc, char** argv) {
  using namespace acic;
  const util::Options opts(argc, argv);

  const auto scale =
      static_cast<std::uint32_t>(opts.get_int("scale", 13));
  const auto trials =
      static_cast<std::uint32_t>(opts.get_int("trials", 3));
  const std::vector<std::uint32_t> nodes_list =
      opts.has("nodes") ? bench::parse_list(opts.get("nodes", ""))
                        : std::vector<std::uint32_t>{1, 2, 4, 8, 16};
  const std::vector<std::uint32_t> buffers =
      opts.has("buffers") ? bench::parse_list(opts.get("buffers", ""))
                          : std::vector<std::uint32_t>{64,  128, 256,
                                                       512, 1024, 2048};

  std::printf("Figure 6: tramlib buffer size sweep, random graph scale=%u "
              "(%u trials)  [paper: 512/1024/2048 across 1-16 nodes]\n",
              scale, trials);

  std::vector<std::string> headers{"nodes"};
  for (const auto b : buffers) {
    headers.push_back(util::strformat("buf%u_time_s", b));
  }
  headers.push_back("optimal_buffer");
  util::Table table(headers);

  for (const std::uint32_t nodes : nodes_list) {
    std::vector<std::string> row{util::strformat("%u", nodes)};
    double best_time = 1e300;
    std::uint32_t best_buffer = 0;
    for (const std::uint32_t buffer : buffers) {
      double time_s = 0.0;
      for (std::uint32_t trial = 0; trial < trials; ++trial) {
        stats::ExperimentSpec spec;
        spec.graph = stats::GraphKind::kRandom;
        spec.scale = scale;
        spec.nodes = nodes;
        spec.seed = util::derive_seed(17, trial);
        stats::AlgoParams params;
        params.set_buffer_items(buffer);
        const auto outcome =
            stats::run_experiment(stats::Algo::kAcic, spec, params);
        time_s += outcome.sssp.metrics.sim_time_s();
      }
      time_s /= trials;
      row.push_back(util::strformat("%.5f", time_s));
      if (time_s < best_time) {
        best_time = time_s;
        best_buffer = buffer;
      }
    }
    row.push_back(util::strformat("%u", best_buffer));
    table.add_row(row);
  }
  table.print();
  std::printf("paper shape: the optimal buffer size shifts smaller as "
              "node count grows\n");
  bench::write_csv(table, opts, "fig6_buffer_size.csv");
  return 0;
}
