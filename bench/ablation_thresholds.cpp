// Ablation: the paper's two-tier threshold rule (Algorithm 1) vs the
// future-work shape-aware work-window function (§V: "an ideal approach
// would be to create a function with a whole histogram as input and
// thresholds as output, taking into account both the number of updates
// and the shape of the histogram").

#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/util/rng.hpp"

int main(int argc, char** argv) {
  using namespace acic;
  const util::Options opts(argc, argv);
  const auto scale =
      static_cast<std::uint32_t>(opts.get_int("scale", 13));
  const auto trials =
      static_cast<std::uint32_t>(opts.get_int("trials", 3));

  std::printf("Ablation: threshold function, Algorithm 1 vs work-window "
              "(scale=%u, %u trials)\n", scale, trials);

  util::Table table({"graph", "nodes", "two_tier_time_s",
                     "work_window_time_s", "two_tier_updates",
                     "work_window_updates"});
  for (const stats::GraphKind kind :
       {stats::GraphKind::kRandom, stats::GraphKind::kRmat}) {
    for (const std::uint32_t nodes : {1u, 4u, 16u}) {
      double tt_time = 0.0;
      double ww_time = 0.0;
      double tt_updates = 0.0;
      double ww_updates = 0.0;
      for (std::uint32_t trial = 0; trial < trials; ++trial) {
        stats::ExperimentSpec spec;
        spec.graph = kind;
        spec.scale = scale;
        spec.nodes = nodes;
        spec.seed = util::derive_seed(53, trial);
        const graph::Csr csr = stats::build_graph(spec);

        stats::AlgoParams two_tier;  // paper default
        const auto tt =
            stats::run_algorithm(stats::Algo::kAcic, csr, spec, two_tier);
        tt_time += tt.sssp.metrics.sim_time_s();
        tt_updates +=
            static_cast<double>(tt.sssp.metrics.updates_created);

        stats::AlgoParams work_window;
        work_window.acic.threshold_policy =
            core::ThresholdPolicyKind::kWorkWindow;
        const auto ww = stats::run_algorithm(stats::Algo::kAcic, csr,
                                             spec, work_window);
        ww_time += ww.sssp.metrics.sim_time_s();
        ww_updates +=
            static_cast<double>(ww.sssp.metrics.updates_created);
      }
      table.add_row({stats::graph_kind_name(kind),
                     util::strformat("%u", nodes),
                     util::strformat("%.5f", tt_time / trials),
                     util::strformat("%.5f", ww_time / trials),
                     util::strformat("%.0f", tt_updates / trials),
                     util::strformat("%.0f", ww_updates / trials)});
    }
  }
  table.print();
  bench::write_csv(table, opts, "ablation_thresholds.csv");
  return 0;
}
