// Graph500-SSSP-style harness: the benchmark protocol the paper's RIKEN
// baseline was built for.  Runs SSSP from several random roots on one
// graph instance, validates each run, and reports harmonic-mean TEPS and
// per-root statistics for ACIC and the RIKEN-style baseline.

#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/baselines/sequential.hpp"
#include "src/graph/validate.hpp"
#include "src/util/rng.hpp"
#include "src/util/stats.hpp"

int main(int argc, char** argv) {
  using namespace acic;
  const util::Options opts(argc, argv);
  const auto scale =
      static_cast<std::uint32_t>(opts.get_int("scale", 13));
  const auto nodes =
      static_cast<std::uint32_t>(opts.get_int("nodes", 4));
  const auto num_roots =
      static_cast<std::uint32_t>(opts.get_int("roots", 8));  // spec: 64
  const auto kind =
      stats::graph_kind_from_string(opts.get("graph", "rmat"));

  std::printf("Graph500-style SSSP: %s scale=%u, %u mini-nodes, %u "
              "random roots (spec uses 64)\n",
              stats::graph_kind_name(kind), scale, nodes, num_roots);

  stats::ExperimentSpec spec;
  spec.graph = kind;
  spec.scale = scale;
  spec.nodes = nodes;
  spec.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  const graph::Csr csr = stats::build_graph(spec);

  util::Xoshiro256 root_rng(util::derive_seed(spec.seed, 99));
  std::vector<double> acic_teps;
  std::vector<double> riken_teps;
  std::uint32_t validated = 0;
  for (std::uint32_t r = 0; r < num_roots; ++r) {
    // Graph500 requires roots with at least one edge.
    graph::VertexId root = 0;
    do {
      root = static_cast<graph::VertexId>(
          root_rng.next_below(csr.num_vertices()));
    } while (csr.out_degree(root) == 0);
    spec.source = root;

    const auto acic_run =
        stats::run_algorithm(stats::Algo::kAcic, csr, spec);
    const auto riken_run =
        stats::run_algorithm(stats::Algo::kRiken, csr, spec);
    acic_teps.push_back(acic_run.sssp.metrics.teps());
    riken_teps.push_back(riken_run.sssp.metrics.teps());

    const auto expected = baselines::dijkstra(csr, root);
    const bool ok =
        graph::compare_distances(acic_run.sssp.dist, expected).ok &&
        graph::compare_distances(riken_run.sssp.dist, expected).ok;
    if (ok) {
      ++validated;
    } else {
      std::printf("  root %u FAILED validation\n", root);
    }
  }

  util::Table table(
      {"algorithm", "geomean_teps", "min_teps", "max_teps", "stddev"});
  table.add_row({"acic",
                 util::strformat("%.3g", util::geomean(acic_teps)),
                 util::strformat("%.3g", util::min_of(acic_teps)),
                 util::strformat("%.3g", util::max_of(acic_teps)),
                 util::strformat("%.3g", util::stddev(acic_teps))});
  table.add_row({"riken-delta",
                 util::strformat("%.3g", util::geomean(riken_teps)),
                 util::strformat("%.3g", util::min_of(riken_teps)),
                 util::strformat("%.3g", util::max_of(riken_teps)),
                 util::strformat("%.3g", util::stddev(riken_teps))});
  table.print();
  std::printf("%u/%u roots validated against Dijkstra\n", validated,
              num_roots);
  bench::write_csv(table, opts, "graph500_style.csv");
  return validated == num_roots ? 0 : 1;
}
