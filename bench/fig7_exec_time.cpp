// Figure 7: execution time of ACIC vs the RIKEN-style hybrid 2-D
// Δ-stepping baseline, on random and RMAT graphs, across node counts.
//
// Paper shape to reproduce: ACIC faster on random graphs (1.3x at 1–2
// nodes growing to ~1.8x at 8–16), Δ-stepping faster on RMAT (~2.5–3.5x,
// narrowing as nodes increase).
//
// Usage: fig7_exec_time [--scale N] [--trials T] [--nodes 1,2,4,8,16]
//        (environment: ACIC_SCALE / ACIC_TRIALS / ACIC_NODES)

#include <cstdio>

#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace acic;
  const util::Options opts(argc, argv);
  const stats::CompareSpec spec = bench::compare_spec_from_options(opts);

  std::printf("Figure 7: ACIC vs RIKEN delta-stepping execution time\n");
  bench::print_spec(spec);

  const auto rows = stats::run_comparison(spec, bench::progress_line);

  util::Table table({"graph", "nodes", "acic_time_s", "riken_time_s",
                     "speedup_acic", "winner"});
  for (const auto& row : rows) {
    const double speedup = row.speedup_acic_over_riken();
    table.add_row({stats::graph_kind_name(row.graph),
                   util::strformat("%u", row.nodes),
                   util::strformat("%.4f", row.acic_time_s),
                   util::strformat("%.4f", row.riken_time_s),
                   util::strformat("%.2fx", speedup),
                   speedup >= 1.0 ? "acic" : "riken"});
  }
  table.print();
  bench::write_csv(table, opts, "fig7_exec_time.csv");
  return 0;
}
