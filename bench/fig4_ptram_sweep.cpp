// Figure 4: effect of the tram percentile p_tram on ACIC runtime
// (random graph, one node).
//
// Paper shape to reproduce: runtime is minimized at p_tram = 0.999 —
// holding updates back on the *sender* side only slows the pipeline
// down, because the receiver-side pq already suppresses the expansion of
// sub-optimal updates.

#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/util/rng.hpp"

int main(int argc, char** argv) {
  using namespace acic;
  const util::Options opts(argc, argv);

  stats::ExperimentSpec spec;
  spec.graph = stats::GraphKind::kRandom;
  spec.scale = static_cast<std::uint32_t>(opts.get_int("scale", 13));
  spec.nodes = static_cast<std::uint32_t>(
      opts.get_int("nodes", 6));  // 6 mini-nodes = 48 PEs, the paper's node
  const auto trials =
      static_cast<std::uint32_t>(opts.get_int("trials", 3));

  std::printf("Figure 4: p_tram sweep on a random graph (scale=%u, %u "
              "node(s), %u trials)  [paper: 0.05..0.999, optimum 0.999]\n",
              spec.scale, spec.nodes, trials);

  util::Table table({"p_tram", "time_s", "updates_created"});
  double best_time = 1e300;
  double best_p = 0.0;
  for (const double p :
       {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.999}) {
    double time_s = 0.0;
    double created = 0.0;
    for (std::uint32_t trial = 0; trial < trials; ++trial) {
      spec.seed = util::derive_seed(11, trial);
      stats::AlgoParams params;
      params.acic.p_tram = p;
      const auto outcome =
          stats::run_experiment(stats::Algo::kAcic, spec, params);
      time_s += outcome.sssp.metrics.sim_time_s();
      created += static_cast<double>(outcome.sssp.metrics.updates_created);
    }
    time_s /= trials;
    created /= trials;
    if (time_s < best_time) {
      best_time = time_s;
      best_p = p;
    }
    table.add_row({util::strformat("%.3f", p),
                   util::strformat("%.5f", time_s),
                   util::strformat("%.0f", created)});
  }
  table.print();
  std::printf("optimal p_tram here: %.3f (paper: 0.999)\n", best_p);
  bench::write_csv(table, opts, "fig4_ptram_sweep.csv");
  return 0;
}
