// Ablation: which of ACIC's mechanisms actually reduce wasted work?
// Switches off, one at a time: the min-priority queue (expand on arrival,
// i.e. the paper's §II.A baseline behaviour), the receiver-side pq_hold,
// and the sender-side tram_hold.  DESIGN.md calls these out as the
// design choices to ablate.

#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/util/rng.hpp"

namespace {

struct Variant {
  const char* name;
  bool use_pq;
  bool use_pq_hold;
  bool use_tram_hold;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace acic;
  const util::Options opts(argc, argv);
  const auto scale =
      static_cast<std::uint32_t>(opts.get_int("scale", 13));
  const auto nodes =
      static_cast<std::uint32_t>(opts.get_int("nodes", 6));
  const auto trials =
      static_cast<std::uint32_t>(opts.get_int("trials", 3));

  std::printf("Ablation: ACIC mechanism knockout (scale=%u, %u mini-nodes,"
              " %u trials)\n", scale, nodes, trials);

  const Variant variants[] = {
      {"full ACIC", true, true, true},
      {"no pq_hold (p_pq=1)", true, false, true},
      {"no tram_hold (p_tram=1)", true, true, false},
      {"no pq (expand on arrival)", false, false, false},
  };

  util::Table table({"graph", "variant", "time_s", "updates_created",
                     "wasted_pct"});
  for (const stats::GraphKind kind :
       {stats::GraphKind::kRandom, stats::GraphKind::kRmat}) {
    for (const Variant& variant : variants) {
      double time_s = 0.0;
      double created = 0.0;
      double wasted = 0.0;
      for (std::uint32_t trial = 0; trial < trials; ++trial) {
        stats::ExperimentSpec spec;
        spec.graph = kind;
        spec.scale = scale;
        spec.nodes = nodes;
        spec.seed = util::derive_seed(23, trial);
        stats::AlgoParams params;
        params.acic.use_pq = variant.use_pq;
        params.acic.use_pq_hold = variant.use_pq_hold;
        params.acic.use_tram_hold = variant.use_tram_hold;
        const auto outcome =
            stats::run_experiment(stats::Algo::kAcic, spec, params);
        time_s += outcome.sssp.metrics.sim_time_s();
        created += static_cast<double>(outcome.sssp.metrics.updates_created);
        wasted += outcome.sssp.metrics.wasted_fraction();
      }
      table.add_row({stats::graph_kind_name(kind), variant.name,
                     util::strformat("%.5f", time_s / trials),
                     util::strformat("%.0f", created / trials),
                     util::strformat("%.1f%%", 100.0 * wasted / trials)});
    }
  }
  table.print();
  std::printf("expected: knocking out pq (the paper's key asynchrony-"
              "focused optimization) inflates updates_created the most\n");
  bench::write_csv(table, opts, "ablation_pq.csv");
  return 0;
}
