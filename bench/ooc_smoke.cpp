// Out-of-core smoke driver: each invocation does ONE phase in its own
// process, so getrusage max-RSS honestly measures that phase alone
// (unlike the in-process sweeps in wallclock, where the high-water mark
// is monotone across configs).  Three modes:
//
//   --mode build     stream-generate the workload graph straight into
//                    the page-aligned on-disk CSR (src/graph/csr_file.hpp)
//                    via StreamingCsrWriter.  The full edge list is never
//                    materialized: edges flow generator -> bounded chunk
//                    -> sorted spill run -> k-way merge, so peak RSS is
//                    O(chunk + merge buffers), not O(|E|).
//   --mode solve     mmap the file (graph::MappedCsr), attach the
//                    frontier-fed page prefetcher, run --solver, and
//                    print OOC_CHECKSUM=<fnv64 over distance bits>.
//   --mode memsolve  build the same graph in memory (stats::build_graph)
//                    and solve — the reference arm.  Prints the same
//                    OOC_CHECKSUM line.
//
// The streamed file holds the identical edge multiset as the in-memory
// build (the stream_* generators replay the same per-chunk RNG draws),
// and the storage backend is invisible to the simulation, so the two
// checksums must match bit for bit.  `--expect-checksum HEX` makes the
// process itself the gate: exit 5 on divergence.  CI runs build + solve
// under `ulimit -v` below the in-memory footprint and memsolve without
// a limit, then diffs the checksum lines.
//
//   ./build/bench/ooc_smoke --mode build --scale 22 --file g.oocsr
//   ./build/bench/ooc_smoke --mode memsolve --scale 22
//   ./build/bench/ooc_smoke --mode solve --file g.oocsr \
//       --expect-checksum <hex from memsolve>
//
// All modes print MAX_RSS_BYTES= / MAJOR_FAULTS= lines for the scripts
// around them.

#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/graph/csr.hpp"
#include "src/graph/csr_file.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/mapped_csr.hpp"
#include "src/graph/ooc_prefetch.hpp"
#include "src/sssp/solver.hpp"
#include "src/stats/experiment.hpp"

namespace {

using namespace acic;

/// Same FNV-1a over raw distance bits as bench/wallclock.cpp: the two
/// harnesses must agree on the value so their checksums are comparable.
std::uint64_t checksum_distances(const std::vector<graph::Dist>& dist) {
  std::uint64_t h = 1469598103934665603ull;
  for (const graph::Dist d : dist) {
    std::uint64_t bits = 0;
    static_assert(sizeof(d) == sizeof(bits));
    std::memcpy(&bits, &d, sizeof(bits));
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (bits >> shift) & 0xffull;
      h *= 1099511628211ull;
    }
  }
  return h;
}

void print_usage() {
  const bench::ResourceUsage rss = bench::resource_usage();
  std::printf("MAX_RSS_BYTES=%llu\nMAJOR_FAULTS=%llu\n",
              static_cast<unsigned long long>(rss.max_rss_bytes),
              static_cast<unsigned long long>(rss.major_faults));
}

graph::GenParams gen_params(const util::Options& opts) {
  graph::GenParams params;
  const auto scale =
      static_cast<std::uint32_t>(opts.get_int("scale", 20));
  params.num_vertices = graph::VertexId{1} << scale;
  params.num_edges =
      static_cast<std::uint64_t>(opts.get_int("edge-factor", 16)) *
      params.num_vertices;
  params.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  return params;
}

int run_build(const util::Options& opts) {
  const std::string path = opts.get("file", "graph.oocsr");
  const std::string kind = opts.get("graph", "random");
  const graph::GenParams params = gen_params(opts);
  graph::StreamingCsrWriter::Options wopts;
  wopts.chunk_edges = static_cast<std::uint64_t>(
      opts.get_int("chunk-edges", 1 << 22));
  wopts.threads = static_cast<unsigned>(opts.get_int("threads", 1));
  wopts.tmp_dir = opts.get("tmp-dir", "");

  const auto start = std::chrono::steady_clock::now();
  graph::StreamingCsrWriter writer(path, params.num_vertices, wopts);
  const graph::EdgeSink sink = [&writer](std::span<const graph::Edge> e) {
    writer.add(e);
  };
  if (kind == "random") {
    graph::stream_uniform_random(params, sink);
  } else if (kind == "rmat") {
    graph::stream_rmat(params, sink);
  } else {
    std::fprintf(stderr,
                 "ooc_smoke: --graph must be random or rmat for the "
                 "streamed build (got '%s')\n",
                 kind.c_str());
    return 2;
  }
  const std::uint64_t edges = writer.num_edges_added();
  const std::size_t runs = writer.num_runs();
  if (!writer.finish()) {
    std::fprintf(stderr, "ooc_smoke: streaming build failed for %s\n",
                 path.c_str());
    return 2;
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;

  graph::CsrFileHeader header;
  if (!graph::probe_csr_file(path, &header)) {
    std::fprintf(stderr, "ooc_smoke: built file fails probe: %s\n",
                 path.c_str());
    return 2;
  }
  std::printf("built %s: |V|=%llu |E|=%llu runs=%zu wall=%.1fs\n",
              path.c_str(),
              static_cast<unsigned long long>(header.num_vertices),
              static_cast<unsigned long long>(edges), runs, wall.count());
  std::printf("FILE_BYTES=%llu\n",
              static_cast<unsigned long long>(header.neighbors_pos +
                                              header.neighbors_bytes));
  print_usage();
  return 0;
}

/// Shared solve tail: run `solver`, print the checksum + usage lines,
/// enforce --expect-checksum.
int solve_and_report(const util::Options& opts, const graph::Csr& csr,
                     graph::ooc::FrontierFeed* feed,
                     graph::ooc::PagePrefetcher* prefetcher) {
  const std::string solver = opts.get("solver", "acic");
  if (!sssp::has_solver(solver)) {
    std::fprintf(stderr, "ooc_smoke: unknown solver '%s'\n", solver.c_str());
    return 2;
  }
  stats::ExperimentSpec spec;
  spec.nodes = static_cast<std::uint32_t>(opts.get_int("nodes", 2));
  runtime::Machine machine(spec.topology());
  machine.set_threads(static_cast<unsigned>(opts.get_int("threads", 1)));
  machine.set_window_mode(opts.get("window-mode", "adaptive") == "fixed"
                              ? runtime::WindowMode::kFixed
                              : runtime::WindowMode::kAdaptive);
  const auto source =
      static_cast<graph::VertexId>(opts.get_int("source", 0));
  sssp::SolverOptions sopts;
  sopts.storage.frontier_feed = feed;

  const auto start = std::chrono::steady_clock::now();
  sssp::SolverRun run = sssp::run_solver(solver, machine, csr, source, sopts);
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;

  const std::uint64_t checksum = checksum_distances(run.sssp.dist);
  std::printf("%s: wall=%.1fs sim=%.0fus updates=%llu\n", solver.c_str(),
              wall.count(), run.sssp.metrics.sim_time_us,
              static_cast<unsigned long long>(
                  run.sssp.metrics.updates_created));
  if (prefetcher != nullptr) {
    prefetcher->stop();
    const graph::ooc::PagePrefetcher::Stats stats = prefetcher->stats();
    std::printf("prefetch: consumed=%llu hints=%llu coalesced=%llu "
                "pages=%llu overflows=%llu evictions=%llu dropped=%llu "
                "resident_est=%llu\n",
                static_cast<unsigned long long>(stats.vertices_consumed),
                static_cast<unsigned long long>(stats.hints_issued),
                static_cast<unsigned long long>(stats.hints_coalesced),
                static_cast<unsigned long long>(stats.pages_hinted),
                static_cast<unsigned long long>(stats.ring_overflows),
                static_cast<unsigned long long>(stats.evictions),
                static_cast<unsigned long long>(stats.pages_dropped),
                static_cast<unsigned long long>(
                    stats.resident_bytes_estimate));
  }
  std::printf("OOC_CHECKSUM=%016" PRIx64 "\n", checksum);
  print_usage();

  const std::string expect = opts.get("expect-checksum", "");
  if (!expect.empty()) {
    const std::uint64_t want = std::strtoull(expect.c_str(), nullptr, 16);
    if (want != checksum) {
      std::fprintf(stderr,
                   "ooc_smoke: checksum divergence: got %016" PRIx64
                   ", expected %016" PRIx64 "\n",
                   checksum, want);
      return 5;
    }
    std::printf("checksum matches expected value\n");
  }
  return 0;
}

int run_solve(const util::Options& opts) {
  const std::string path = opts.get("file", "graph.oocsr");
  std::unique_ptr<graph::MappedCsr> mapped;
  try {
    mapped = std::make_unique<graph::MappedCsr>(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ooc_smoke: %s\n", e.what());
    return 2;
  }
  std::printf("mapped %s: |V|=%u |E|=%llu mapping=%llu bytes\n",
              path.c_str(), mapped->num_vertices(),
              static_cast<unsigned long long>(mapped->num_edges()),
              static_cast<unsigned long long>(mapped->mapping_bytes()));

  std::unique_ptr<graph::ooc::FrontierFeed> feed;
  std::unique_ptr<graph::ooc::PagePrefetcher> prefetcher;
  if (opts.get_bool("prefetch", true)) {
    feed = std::make_unique<graph::ooc::FrontierFeed>();
    graph::ooc::PagePrefetcher::Options popts;
    popts.residency_budget_bytes =
        static_cast<std::uint64_t>(opts.get_int("budget-mb", 0)) << 20;
    prefetcher = std::make_unique<graph::ooc::PagePrefetcher>(
        *mapped, *feed, popts);
  }
  return solve_and_report(opts, mapped->csr(), feed.get(),
                          prefetcher.get());
}

int run_memsolve(const util::Options& opts) {
  stats::ExperimentSpec spec;
  spec.graph = stats::graph_kind_from_string(opts.get("graph", "random"));
  spec.scale = static_cast<std::uint32_t>(opts.get_int("scale", 20));
  spec.edge_factor =
      static_cast<std::uint32_t>(opts.get_int("edge-factor", 16));
  spec.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  spec.threads = static_cast<unsigned>(opts.get_int("threads", 1));
  const graph::Csr csr = stats::build_graph(spec);
  std::printf("built in memory: |V|=%u |E|=%llu\n", csr.num_vertices(),
              static_cast<unsigned long long>(csr.num_edges()));
  return solve_and_report(opts, csr, nullptr, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts;
  opts.parse(argc, argv);
  const std::string mode = opts.get("mode", "build");
  if (mode == "build") return run_build(opts);
  if (mode == "solve") return run_solve(opts);
  if (mode == "memsolve") return run_memsolve(opts);
  std::fprintf(stderr,
               "ooc_smoke: --mode must be build, solve or memsolve "
               "(got '%s')\n",
               mode.c_str());
  return 2;
}
