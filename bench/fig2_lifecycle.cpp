// Figure 2 companion: the paper's fig. 2 is the update-lifecycle diagram
// (create → tram/tram_hold → arrival → reject or pq/pq_hold → expand).
// This bench makes the diagram quantitative: it runs ACIC on both paper
// workloads and prints how many updates flowed through every stage.

#include <cstdio>

#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace acic;
  const util::Options opts(argc, argv);

  const auto scale =
      static_cast<std::uint32_t>(opts.get_int("scale", 13));
  const auto nodes =
      static_cast<std::uint32_t>(opts.get_int("nodes", 1));

  std::printf("Figure 2: update lifecycle stage counts (scale=%u, %u "
              "node(s))\n", scale, nodes);

  util::Table table({"graph", "created", "sent_direct", "tram_held",
                     "rejected", "pq_direct", "pq_held", "superseded",
                     "expanded"});
  for (const stats::GraphKind kind :
       {stats::GraphKind::kRandom, stats::GraphKind::kRmat}) {
    stats::ExperimentSpec spec;
    spec.graph = kind;
    spec.scale = scale;
    spec.nodes = nodes;
    spec.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));

    const graph::Csr csr = stats::build_graph(spec);
    runtime::Machine machine(spec.topology());
    const auto partition =
        graph::Partition1D::block(csr.num_vertices(), machine.num_pes());
    const core::AcicRunResult run =
        core::acic_sssp(machine, csr, partition, spec.source, {});

    const core::LifecycleCounts& lc = run.lifecycle;
    table.add_row({stats::graph_kind_name(kind),
                   util::strformat("%llu", (unsigned long long)lc.created),
                   util::strformat("%llu",
                                   (unsigned long long)lc.sent_directly),
                   util::strformat("%llu",
                                   (unsigned long long)lc.held_in_tram),
                   util::strformat(
                       "%llu", (unsigned long long)lc.rejected_on_arrival),
                   util::strformat(
                       "%llu", (unsigned long long)lc.entered_pq_directly),
                   util::strformat("%llu",
                                   (unsigned long long)lc.held_in_pq_hold),
                   util::strformat("%llu",
                                   (unsigned long long)lc.superseded_in_pq),
                   util::strformat("%llu",
                                   (unsigned long long)lc.expanded)});
  }
  table.print();
  std::printf("invariant: created = rejected + superseded + expanded "
              "(every update is processed exactly once)\n");
  std::printf("invariant: created = sent_direct + tram_held "
              "(every update passes the t_tram gate once)\n");
  bench::write_csv(table, opts, "fig2_lifecycle.csv");
  return 0;
}
