#pragma once
// Helpers shared by the figure-reproduction bench binaries: option
// parsing into CompareSpec/ExperimentSpec, progress printing, CSV output.

#include <sys/resource.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/obs/export.hpp"
#include "src/obs/registry.hpp"
#include "src/runtime/trace.hpp"
#include "src/stats/compare.hpp"
#include "src/stats/experiment.hpp"
#include "src/util/options.hpp"
#include "src/util/table.hpp"

namespace acic::bench {

/// Parses a comma-separated list of unsigned integers.  A token that is
/// not a plain decimal number (e.g. `--nodes=1,x`) is an option error:
/// the harness prints which token of which option was bad and exits,
/// instead of dying in an uncaught std::stoul exception.
inline std::vector<std::uint32_t> parse_list(const std::string& csv,
                                             const char* option = "list") {
  std::vector<std::uint32_t> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok =
        csv.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty()) {
      std::uint64_t value = 0;
      bool ok = true;
      for (const char c : tok) {
        if (c < '0' || c > '9') {
          ok = false;
          break;
        }
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
        if (value > 0xffffffffull) {
          ok = false;
          break;
        }
      }
      if (!ok) {
        std::fprintf(stderr,
                     "option error: --%s: invalid token '%s' in '%s' "
                     "(want comma-separated unsigned integers)\n",
                     option, tok.c_str(), csv.c_str());
        std::exit(2);
      }
      out.push_back(static_cast<std::uint32_t>(value));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// Parses a comma-separated `--threads` list (host worker threads for
/// the engine and graph build).  Shares parse_list's non-numeric
/// handling (a leading '-' is not a digit, so negatives are rejected
/// there) and additionally rejects 0: "zero threads" is always a typo,
/// not a request for a serial run — that is `--threads 1`.
inline std::vector<unsigned> parse_threads_list(
    const std::string& csv, const char* option = "threads") {
  std::vector<unsigned> out;
  for (const std::uint32_t v : parse_list(csv, option)) {
    if (v == 0) {
      std::fprintf(stderr,
                   "option error: --%s: thread counts must be >= 1 "
                   "(got 0 in '%s')\n",
                   option, csv.c_str());
      std::exit(2);
    }
    out.push_back(v);
  }
  if (out.empty()) {
    std::fprintf(stderr, "option error: --%s: empty thread list '%s'\n",
                 option, csv.c_str());
    std::exit(2);
  }
  return out;
}

/// Single-value form of parse_threads_list for binaries that take one
/// `--threads N`.
inline unsigned parse_threads(const std::string& value,
                              const char* option = "threads") {
  const std::vector<unsigned> list = parse_threads_list(value, option);
  if (list.size() != 1) {
    std::fprintf(stderr,
                 "option error: --%s: expected one thread count, got "
                 "'%s'\n",
                 option, value.c_str());
    std::exit(2);
  }
  return list.front();
}

inline stats::CompareSpec compare_spec_from_options(
    const util::Options& opts) {
  stats::CompareSpec spec;
  spec.scale =
      static_cast<std::uint32_t>(opts.get_int("scale", spec.scale));
  spec.edge_factor = static_cast<std::uint32_t>(
      opts.get_int("edge-factor", spec.edge_factor));
  spec.trials =
      static_cast<std::uint32_t>(opts.get_int("trials", spec.trials));
  spec.base_seed =
      static_cast<std::uint64_t>(opts.get_int("seed", 1));
  if (opts.has("nodes")) {
    spec.nodes_list = parse_list(opts.get("nodes", ""), "nodes");
  }
  spec.buffer_override =
      static_cast<std::size_t>(opts.get_int("buffer", 0));
  spec.full_scale_nodes = opts.get_bool("full-nodes", false);
  return spec;
}

inline void print_spec(const stats::CompareSpec& spec) {
  std::printf(
      "  scale=%u (|V|=%u, |E|=%u*|V|), trials=%u, nodes={", spec.scale,
      1u << spec.scale, spec.edge_factor, spec.trials);
  for (std::size_t i = 0; i < spec.nodes_list.size(); ++i) {
    std::printf("%s%u", i ? "," : "", spec.nodes_list[i]);
  }
  std::printf("}  [paper: scale=26, 10 trials, real Delta/Frontier nodes]\n");
}

inline void progress_line(const char* line) {
  std::printf("%s\n", line);
  std::fflush(stdout);
}

inline void write_csv(const util::Table& table, const util::Options& opts,
                      const std::string& default_name) {
  const std::string path = opts.get("csv", default_name);
  if (table.write_csv(path)) {
    std::printf("wrote %s\n", path.c_str());
  }
}

/// One divergence between two supposedly identical runs, for the
/// bit-identity gates (cross-thread, cross-window-mode, cross-engine-mode,
/// cross-storage, repeat-trial): the simulated-side field that differed
/// and both values, pre-rendered.
struct FieldDiff {
  const char* field;
  std::string a;
  std::string b;
};

/// Prints every diverging field with both values, then — so the reader
/// of a failure knows what was deliberately NOT compared — the
/// host-side diagnostic fields the comparison excludes (they describe
/// how the host executed the schedule, not the schedule itself, and
/// legitimately vary with threads / window mode / engine mode), then
/// exits 4.
[[noreturn]] inline void die_divergence(const std::string& context,
                                        const std::vector<FieldDiff>& diffs) {
  for (const FieldDiff& d : diffs) {
    std::fprintf(stderr, "bench: %s: %s diverged (%s vs %s)\n",
                 context.c_str(), d.field, d.a.c_str(), d.b.c_str());
  }
  std::fprintf(stderr,
               "bench: host-side diagnostic fields excluded from this "
               "comparison: threads_used, windows, window_merges, "
               "shard_steals, speculation_rollbacks, speculation_commits, "
               "speculated_events, replayed_events, checkpoint_bytes\n");
  std::exit(4);
}

/// Process-wide resource high-water marks, for per-config reporting next
/// to wall time.  max_rss_bytes is getrusage's peak resident set — a
/// monotone process-lifetime number, so a harness comparing configs
/// in-process can only attribute it to the *first* config that reached
/// the peak; single-run tools (ooc_smoke) report it per phase honestly.
/// major_faults counts page faults that hit storage — the out-of-core
/// cost the prefetcher exists to hide.
struct ResourceUsage {
  std::uint64_t max_rss_bytes = 0;
  std::uint64_t major_faults = 0;
  std::uint64_t minor_faults = 0;
};

inline ResourceUsage resource_usage() {
  ResourceUsage out;
  struct rusage ru = {};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    // Linux reports ru_maxrss in kilobytes.
    out.max_rss_bytes = static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
    out.major_faults = static_cast<std::uint64_t>(ru.ru_majflt);
    out.minor_faults = static_cast<std::uint64_t>(ru.ru_minflt);
  }
  return out;
}

/// Shared `--trace-json PATH` / `--obs-csv PATH` handling: exports the
/// attached tracer/registry as a Perfetto-loadable Chrome trace and as
/// counter time-series CSV.  Either pointer may be null; flags that were
/// not given are ignored.  If the tracer overflowed its capacity bound,
/// says so (the exported window covers only the most recent spans).
inline void export_observability(const util::Options& opts,
                                 const runtime::Topology& topology,
                                 const runtime::Tracer* tracer,
                                 const obs::Registry* registry) {
  const std::string trace_path = opts.get("trace-json", "");
  if (!trace_path.empty() &&
      obs::write_chrome_trace(trace_path, topology, tracer, registry)) {
    std::printf("wrote %s (open in https://ui.perfetto.dev)\n",
                trace_path.c_str());
  }
  const std::string series_path = opts.get("obs-csv", "");
  if (!series_path.empty() && registry != nullptr &&
      obs::write_timeseries_csv(series_path, *registry)) {
    std::printf("wrote %s\n", series_path.c_str());
  }
  if (tracer != nullptr && tracer->overflowed()) {
    std::printf("note: tracer dropped %llu oldest spans (capacity %zu); "
                "exports cover the most recent window\n",
                static_cast<unsigned long long>(tracer->dropped_spans()),
                tracer->capacity());
  }
}

}  // namespace acic::bench
