// Wall-clock benchmark harness: times *host* seconds per solver × scale
// and emits BENCH_wallclock.json at the repo root (or --out PATH), so
// every PR leaves a perf trajectory behind.  Unlike the fig*/ablation
// harnesses (which report *simulated* time), this one measures how fast
// the discrete-event simulator itself runs — the number the hot-path
// work in src/runtime/ is accountable to.
//
//   ./build/bench/wallclock --scales 16,18 --trials 3
//   ./build/bench/wallclock --scale 18 --threads 1,2,4 --trials 3
//   ./build/bench/wallclock --scale 16 --trials 3 --check BENCH_wallclock.json
//   (--check exits 3 on a >25% events/sec regression vs the checked file)
//
// Per (solver, scale, threads) the harness runs `trials` identical
// queries on fresh machines and reports best/mean wall seconds,
// events/sec and tasks/sec (scheduler throughput), plus the
// simulated-side invariants (sim time, update counts, an FNV-1a checksum
// over the distance bits) that must stay bit-identical across host-side
// optimizations — including across `--threads` values: the parallel
// engine is required to reproduce the serial schedule exactly, and the
// harness exits 4 if any thread count diverges.  A `pre_pr` object
// already present in the output file is carried forward, preserving the
// before/after record the ISSUE asks for.

#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/graph/csr.hpp"
#include "src/sssp/solver.hpp"
#include "src/stats/experiment.hpp"

namespace {

using namespace acic;

struct Sample {
  double wall_best_s = 0.0;
  double wall_mean_s = 0.0;
  std::uint64_t events = 0;  // heap pops in Machine::run
  std::uint64_t tasks = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  double sim_time_us = 0.0;
  std::uint64_t updates_created = 0;
  std::uint64_t cycles = 0;
  std::uint64_t dist_checksum = 0;
};

/// FNV-1a over the raw distance bits: any behavioural drift in the
/// simulation shows up here before anything else.
std::uint64_t checksum_distances(const std::vector<graph::Dist>& dist) {
  std::uint64_t h = 1469598103934665603ull;
  for (const graph::Dist d : dist) {
    std::uint64_t bits = 0;
    static_assert(sizeof(d) == sizeof(bits));
    std::memcpy(&bits, &d, sizeof(bits));
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (bits >> shift) & 0xffull;
      h *= 1099511628211ull;
    }
  }
  return h;
}

Sample run_one(const std::string& solver, const stats::ExperimentSpec& spec,
               const graph::Csr& csr, std::uint32_t trials,
               unsigned threads) {
  Sample sample;
  sample.wall_best_s = 1e300;
  for (std::uint32_t trial = 0; trial < trials; ++trial) {
    runtime::Machine machine(spec.topology());
    machine.set_threads(threads);
    sssp::SolverOptions opts;
    const auto start = std::chrono::steady_clock::now();
    const sssp::SolverRun run =
        sssp::run_solver(solver, machine, csr, spec.source, opts);
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - start;
    sample.wall_best_s = std::min(sample.wall_best_s, wall.count());
    sample.wall_mean_s += wall.count() / static_cast<double>(trials);

    // Every trial replays the identical simulation, so the simulated-side
    // numbers are recorded once and cross-checked on the repeats.
    std::uint64_t tasks = 0;
    for (runtime::PeId p = 0; p < machine.num_pes(); ++p) {
      tasks += machine.pe_tasks_run(p);
    }
    const std::uint64_t checksum = checksum_distances(run.sssp.dist);
    if (trial == 0) {
      sample.events = machine.total_events_processed();
      sample.tasks = tasks;
      sample.messages = machine.total_messages_sent();
      sample.bytes = machine.total_bytes_sent();
      sample.sim_time_us = run.sssp.metrics.sim_time_us;
      sample.updates_created = run.sssp.metrics.updates_created;
      sample.cycles = run.telemetry.cycles;
      sample.dist_checksum = checksum;
    } else if (checksum != sample.dist_checksum ||
               tasks != sample.tasks) {
      std::fprintf(stderr,
                   "wallclock: nondeterminism! %s trial %u diverged "
                   "(checksum %016" PRIx64 " vs %016" PRIx64 ")\n",
                   solver.c_str(), trial, checksum, sample.dist_checksum);
      std::exit(4);
    }
  }
  return sample;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Extracts the balanced-brace object following `"key":` in `text`; empty
/// string if absent.  Enough JSON for our own self-produced files.
std::string extract_object(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return {};
  std::size_t open = text.find('{', at + needle.size());
  if (open == std::string::npos) return {};
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '{') ++depth;
    if (text[i] == '}' && --depth == 0) {
      return text.substr(open, i - open + 1);
    }
  }
  return {};
}

/// Finds `"events_per_sec": <num>` inside the results entry for
/// (solver, scale, threads); falls back to the pre-threads entry format
/// (no "threads" field) so old baseline files stay checkable.  0.0 if
/// absent.
double find_events_per_sec(const std::string& text, const std::string& solver,
                           std::uint32_t scale, unsigned threads) {
  const std::string base_key =
      "\"solver\": \"" + solver + "\", \"scale\": " + std::to_string(scale);
  std::size_t at =
      text.find(base_key + ", \"threads\": " + std::to_string(threads));
  if (at == std::string::npos) at = text.find(base_key);
  if (at == std::string::npos) return 0.0;
  const std::string field = "\"events_per_sec\": ";
  const std::size_t f = text.find(field, at);
  if (f == std::string::npos) return 0.0;
  return std::strtod(text.c_str() + f + field.size(), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts;
  opts.parse(argc, argv);

  std::vector<std::uint32_t> scales{16};
  if (opts.has("scales")) {
    scales = bench::parse_list(opts.get("scales", ""), "scales");
  } else if (opts.has("scale")) {
    scales = {static_cast<std::uint32_t>(opts.get_int("scale", 16))};
  }
  const auto trials =
      static_cast<std::uint32_t>(opts.get_int("trials", 3));
  const std::string solvers_csv =
      opts.get("solvers", "acic,delta_stepping_dist,kla");
  const std::string out_path = opts.get("out", "BENCH_wallclock.json");
  std::vector<unsigned> threads_list{1};
  if (opts.has("threads")) {
    threads_list =
        bench::parse_threads_list(opts.get("threads", ""), "threads");
  }

  std::vector<std::string> solvers;
  {
    std::size_t pos = 0;
    while (pos <= solvers_csv.size()) {
      const std::size_t comma = solvers_csv.find(',', pos);
      const std::string tok = solvers_csv.substr(
          pos, comma == std::string::npos ? comma : comma - pos);
      if (!tok.empty()) solvers.push_back(tok);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  for (const std::string& solver : solvers) {
    if (!sssp::has_solver(solver)) {
      std::fprintf(stderr, "wallclock: unknown solver '%s'\n",
                   solver.c_str());
      return 2;
    }
  }

  stats::ExperimentSpec base;
  base.graph = stats::graph_kind_from_string(opts.get("graph", "random"));
  base.edge_factor =
      static_cast<std::uint32_t>(opts.get_int("edge-factor", 16));
  base.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  base.nodes = static_cast<std::uint32_t>(opts.get_int("nodes", 2));

  const std::string previous = slurp(out_path);
  const std::string pre_pr = extract_object(previous, "pre_pr");

  std::string results;
  std::printf("wallclock: trials=%u nodes=%u solvers=%s host_cores=%u\n",
              trials, base.nodes, solvers_csv.c_str(),
              std::thread::hardware_concurrency());
  for (const std::uint32_t scale : scales) {
    stats::ExperimentSpec spec = base;
    spec.scale = scale;
    // Build once per scale with the largest requested thread count: the
    // chunked generators produce the identical graph at any value.
    spec.threads = threads_list.back();
    const graph::Csr csr = stats::build_graph(spec);
    std::printf("scale %u: |V|=%u |E|=%llu\n", scale, csr.num_vertices(),
                static_cast<unsigned long long>(csr.num_edges()));
    for (const std::string& solver : solvers) {
      double wall_1thread = -1.0;
      Sample reference;
      bool have_reference = false;
      for (const unsigned threads : threads_list) {
        const Sample s = run_one(solver, spec, csr, trials, threads);
        if (!have_reference) {
          reference = s;
          have_reference = true;
        } else if (s.dist_checksum != reference.dist_checksum ||
                   s.sim_time_us != reference.sim_time_us ||
                   s.tasks != reference.tasks) {
          std::fprintf(stderr,
                       "wallclock: %s diverged at %u threads "
                       "(checksum %016" PRIx64 " vs %016" PRIx64
                       ", sim %.6f vs %.6f)\n",
                       solver.c_str(), threads, s.dist_checksum,
                       reference.dist_checksum, s.sim_time_us,
                       reference.sim_time_us);
          std::exit(4);
        }
        if (threads == 1) wall_1thread = s.wall_best_s;
        // Speedup is only meaningful when the sweep includes a 1-thread
        // reference (e.g. the scale-22 CI step runs --threads 4 alone).
        char speedup_text[32];
        char speedup_json[32];
        if (wall_1thread > 0.0) {
          const double speedup = wall_1thread / s.wall_best_s;
          std::snprintf(speedup_text, sizeof(speedup_text), "%.2f", speedup);
          std::snprintf(speedup_json, sizeof(speedup_json), "%.3f", speedup);
        } else {
          std::snprintf(speedup_text, sizeof(speedup_text), "n/a");
          std::snprintf(speedup_json, sizeof(speedup_json), "null");
        }
        const double events_per_sec =
            static_cast<double>(s.events) / s.wall_best_s;
        const double tasks_per_sec =
            static_cast<double>(s.tasks) / s.wall_best_s;
        std::printf(
            "  %-20s t=%-2u wall=%.3fs (best of %u)  %.3gM events/s  "
            "%.3gM tasks/s  speedup=%s  sim=%.0fus  "
            "checksum=%016" PRIx64 "\n",
            solver.c_str(), threads, s.wall_best_s, trials,
            events_per_sec * 1e-6, tasks_per_sec * 1e-6, speedup_text,
            s.sim_time_us, s.dist_checksum);
        std::fflush(stdout);

        char entry[1024];
        std::snprintf(
            entry, sizeof(entry),
            "    {\"solver\": \"%s\", \"scale\": %u, \"threads\": %u, "
            "\"wall_seconds_best\": %.6f, \"wall_seconds_mean\": %.6f, "
            "\"events\": %llu, \"tasks\": %llu, \"messages\": %llu, "
            "\"bytes\": %llu, \"events_per_sec\": %.1f, "
            "\"tasks_per_sec\": %.1f, \"speedup_vs_1thread\": %s, "
            "\"sim_time_us\": %.6f, "
            "\"updates_created\": %llu, \"cycles\": %llu, "
            "\"dist_checksum\": \"%016" PRIx64 "\"}",
            solver.c_str(), scale, threads, s.wall_best_s, s.wall_mean_s,
            static_cast<unsigned long long>(s.events),
            static_cast<unsigned long long>(s.tasks),
            static_cast<unsigned long long>(s.messages),
            static_cast<unsigned long long>(s.bytes), events_per_sec,
            tasks_per_sec, speedup_json, s.sim_time_us,
            static_cast<unsigned long long>(s.updates_created),
            static_cast<unsigned long long>(s.cycles), s.dist_checksum);
        if (!results.empty()) results += ",\n";
        results += entry;
      }
    }
  }

  std::string json = "{\n  \"benchmark\": \"wallclock\",\n";
  json += "  \"trials\": " + std::to_string(trials) + ",\n";
  json += "  \"nodes\": " + std::to_string(base.nodes) + ",\n";
  json += "  \"edge_factor\": " + std::to_string(base.edge_factor) + ",\n";
  json += "  \"seed\": " + std::to_string(base.seed) + ",\n";
  json += "  \"host_cores\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  if (!pre_pr.empty()) json += "  \"pre_pr\": " + pre_pr + ",\n";
  json += "  \"results\": [\n" + results + "\n  ]\n}\n";

  // Regression gate: compare events/sec for --check-solver at the first
  // measured scale against a previously committed BENCH_wallclock.json.
  if (opts.has("check")) {
    const std::string baseline = slurp(opts.get("check", ""));
    if (baseline.empty()) {
      std::fprintf(stderr, "wallclock: cannot read baseline %s\n",
                   opts.get("check", "").c_str());
      return 2;
    }
    const std::string solver = opts.get("check-solver", "acic");
    const std::uint32_t scale = scales.front();
    const unsigned check_threads = threads_list.front();
    const double tolerance = opts.get_double("max-regress", 0.25);
    const double before =
        find_events_per_sec(baseline, solver, scale, check_threads);
    const double after =
        find_events_per_sec(json, solver, scale, check_threads);
    if (before > 0.0 && after < before * (1.0 - tolerance)) {
      std::fprintf(stderr,
                   "wallclock: %s events/sec regressed %.1f%% at scale %u "
                   "(%.0f -> %.0f, tolerance %.0f%%)\n",
                   solver.c_str(), 100.0 * (1.0 - after / before), scale,
                   before, after, tolerance * 100.0);
      return 3;
    }
    std::printf("regression check ok: %s %.0f -> %.0f events/sec\n",
                solver.c_str(), before, after);
  }

  std::ofstream out(out_path, std::ios::binary);
  out << json;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
