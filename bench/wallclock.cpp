// Wall-clock benchmark harness: times *host* seconds per solver × scale
// and emits BENCH_wallclock.json at the repo root (or --out PATH), so
// every PR leaves a perf trajectory behind.  Unlike the fig*/ablation
// harnesses (which report *simulated* time), this one measures how fast
// the discrete-event simulator itself runs — the number the hot-path
// work in src/runtime/ is accountable to.
//
//   ./build/bench/wallclock --scales 16,18 --trials 3
//   ./build/bench/wallclock --scale 18 --threads 1,2,4 --trials 3
//   ./build/bench/wallclock --scale 16 --threads 1,4 --window-mode fixed,adaptive
//   ./build/bench/wallclock --scale 16 --threads 1,4 --engine-mode conservative,optimistic
//   ./build/bench/wallclock --scale 16 --reorder identity,degree_desc,bfs
//   ./build/bench/wallclock --scale 16 --storage mem,mmap
//   ./build/bench/wallclock --scale 16 --trials 3 --check BENCH_wallclock.json
//   (--check exits 3 on a >25% events/sec regression vs the checked file)
//
// --storage mem,mmap additionally runs every (identity-reorder) config
// against an mmap-backed view of the same graph: the CSR is written to
// the page-aligned on-disk format (src/graph/csr_file.hpp) once per
// scale, opened with graph::MappedCsr, and served to the solvers with a
// frontier-fed page prefetcher attached (src/graph/ooc_prefetch.hpp).
// The storage backend is invisible to the simulation, so every
// simulated-side field — checksums included — is diffed against the
// in-memory arm and any divergence exits 4.  Each result entry reports
// "storage" plus the process max-RSS / major-fault counters at emission
// time (getrusage high-water marks: monotone within the process, so
// cross-arm attribution belongs to ooc_smoke's per-process phases; the
// numbers here are honest upper bounds).
//
// Per (solver, scale, reorder, threads, window-mode) the harness runs
// `trials` identical queries on fresh machines and reports best/mean
// wall seconds, events/sec and tasks/sec (scheduler throughput), plus
// the simulated-side invariants (sim time, update counts, an FNV-1a
// checksum over the distance bits) that must stay bit-identical across
// host-side optimizations — including across `--threads` values and
// across `--window-mode fixed,adaptive`: the parallel engine is
// required to reproduce the serial schedule exactly in either mode, and
// the harness exits 4 (naming the diverging field and both values) if
// any thread count, window mode, or repeat trial diverges.  Host-side
// engine diagnostics (effective thread count after the min(threads,
// nodes) clamp, conservative window count, merge count, steals) ride
// along per entry; adaptive mode's value shows up as a lower window
// count at equal checksums.
//
// --engine-mode conservative,optimistic sweeps the parallel engine's
// execution discipline the same way --window-mode sweeps its window
// policy: the optimistic (Time-Warp-lite) arm speculates past the
// conservative window with checkpoint/rollback, must commit the
// bit-identical schedule (exit 4 otherwise), and additionally reports
// its rollback rate (rollbacks / resolved speculative epochs) and
// speculation efficiency (fraction of speculated events kept rather
// than rolled back and re-executed) next to the checkpoint-bytes
// figure.  Conservative always runs first as the diff reference.
//
// COST gate (after "COST of Graph Processing Using Actors"): every
// config additionally reports `speedup_vs_sequential` against the tuned
// single-thread `sequential` solver on the same (relabeled) graph, and
// the JSON's per-scale `cost_gate` records the first configuration that
// beats one core — or null, honestly, if none does.
//
// --reorder runs each solver on relabeled copies of the graph
// (src/graph/reorder.hpp).  The permuted CSR is built *outside* the
// timed region, distances are inverse-permuted back to original labels
// before checksumming, and every non-identity mode is validated by
// exact distance equality against the identity run (exit 4 on
// violation).  Reordering legitimately changes the message schedule, so
// checksums/sim-times are NOT expected to match across modes — only the
// distances.  Per mode, one extra untimed registry-instrumented run
// collects the per-locality-tier net/* counters so the simulated
// inter-node traffic delta is visible per solver × graph × mode.
//
// A `pre_pr` object already present in the output file is carried
// forward, preserving the before/after record the ISSUE asks for.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/graph/csr.hpp"
#include "src/graph/csr_file.hpp"
#include "src/graph/mapped_csr.hpp"
#include "src/graph/ooc_prefetch.hpp"
#include "src/graph/reorder.hpp"
#include "src/obs/registry.hpp"
#include "src/sssp/solver.hpp"
#include "src/stats/experiment.hpp"

namespace {

using namespace acic;

struct Sample {
  double wall_best_s = 0.0;
  double wall_mean_s = 0.0;
  std::uint64_t events = 0;  // heap pops in Machine::run
  std::uint64_t tasks = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  double sim_time_us = 0.0;
  std::uint64_t updates_created = 0;
  std::uint64_t cycles = 0;
  std::uint64_t dist_checksum = 0;
  /// Host-side engine diagnostics — reported, never diffed: the thread
  /// clamp, window policy, engine mode, and steal schedule legitimately
  /// vary them.
  unsigned threads_used = 1;
  std::uint64_t windows = 0;
  std::uint64_t window_merges = 0;
  std::uint64_t steals = 0;
  /// Optimistic-engine diagnostics (0 under conservative/serial runs).
  std::uint64_t spec_rollbacks = 0;
  std::uint64_t spec_commits = 0;
  std::uint64_t spec_events = 0;
  std::uint64_t spec_replayed = 0;
  std::uint64_t ckpt_bytes = 0;
  /// Distances in *original* labels (inverse-permuted when the run used
  /// a reordered graph) — the cross-mode equality reference.
  std::vector<graph::Dist> dist;
};

/// FNV-1a over the raw distance bits: any behavioural drift in the
/// simulation shows up here before anything else.
std::uint64_t checksum_distances(const std::vector<graph::Dist>& dist) {
  std::uint64_t h = 1469598103934665603ull;
  for (const graph::Dist d : dist) {
    std::uint64_t bits = 0;
    static_assert(sizeof(d) == sizeof(bits));
    std::memcpy(&bits, &d, sizeof(bits));
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (bits >> shift) & 0xffull;
      h *= 1099511628211ull;
    }
  }
  return h;
}

using bench::FieldDiff;

std::string u64_str(std::uint64_t v) { return std::to_string(v); }
std::string hex_str(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}
std::string f_str(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9f", v);
  return buf;
}

/// Field-by-field comparison of the simulated-side invariants.
/// `compare_events` is off for cross-thread checks: per-shard idle polls
/// make the heap-pop count an engine detail, not a schedule invariant.
std::vector<FieldDiff> diff_samples(const Sample& a, const Sample& b,
                                    bool compare_events) {
  std::vector<FieldDiff> diffs;
  if (a.dist_checksum != b.dist_checksum) {
    diffs.push_back({"dist_checksum", hex_str(a.dist_checksum),
                     hex_str(b.dist_checksum)});
  }
  if (a.sim_time_us != b.sim_time_us) {
    diffs.push_back({"sim_time_us", f_str(a.sim_time_us),
                     f_str(b.sim_time_us)});
  }
  if (a.tasks != b.tasks) {
    diffs.push_back({"tasks", u64_str(a.tasks), u64_str(b.tasks)});
  }
  if (a.messages != b.messages) {
    diffs.push_back({"messages", u64_str(a.messages), u64_str(b.messages)});
  }
  if (a.bytes != b.bytes) {
    diffs.push_back({"bytes", u64_str(a.bytes), u64_str(b.bytes)});
  }
  if (a.updates_created != b.updates_created) {
    diffs.push_back({"updates_created", u64_str(a.updates_created),
                     u64_str(b.updates_created)});
  }
  if (a.cycles != b.cycles) {
    diffs.push_back({"cycles", u64_str(a.cycles), u64_str(b.cycles)});
  }
  if (compare_events && a.events != b.events) {
    diffs.push_back({"events", u64_str(a.events), u64_str(b.events)});
  }
  return diffs;
}

// Divergence reporting (exit 4) lives in bench_common.hpp now:
// bench::die_divergence prints every diverging field plus the host-side
// diagnostic fields the comparison deliberately excludes.
using bench::die_divergence;

/// Runs `trials` identical queries of `solver` on `csr` (already
/// relabeled when `remap` is set; the source is mapped in and the
/// distances mapped back out, so Sample::dist and the checksum are in
/// original labels regardless of mode).
Sample run_one(const std::string& solver, const stats::ExperimentSpec& spec,
               const graph::Csr& csr, const graph::Remap* remap,
               std::uint32_t trials, unsigned threads,
               runtime::WindowMode wmode,
               runtime::EngineMode emode = runtime::EngineMode::kConservative,
               graph::ooc::FrontierFeed* feed = nullptr) {
  Sample sample;
  sample.wall_best_s = 1e300;
  const graph::VertexId source =
      remap != nullptr ? remap->map_vertex(spec.source) : spec.source;
  for (std::uint32_t trial = 0; trial < trials; ++trial) {
    runtime::Machine machine(spec.topology());
    machine.set_threads(threads);
    machine.set_window_mode(wmode);
    sssp::SolverOptions opts;
    opts.engine_mode = emode;
    opts.storage.frontier_feed = feed;
    const auto start = std::chrono::steady_clock::now();
    sssp::SolverRun run =
        sssp::run_solver(solver, machine, csr, source, opts);
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - start;
    sample.wall_best_s = std::min(sample.wall_best_s, wall.count());
    sample.wall_mean_s += wall.count() / static_cast<double>(trials);

    // Every trial replays the identical simulation, so the simulated-side
    // numbers are recorded once and cross-checked on the repeats.
    Sample now;
    for (runtime::PeId p = 0; p < machine.num_pes(); ++p) {
      now.tasks += machine.pe_tasks_run(p);
    }
    now.events = machine.total_events_processed();
    now.messages = machine.total_messages_sent();
    now.bytes = machine.total_bytes_sent();
    now.sim_time_us = run.sssp.metrics.sim_time_us;
    now.updates_created = run.sssp.metrics.updates_created;
    now.cycles = run.telemetry.cycles;
    now.threads_used = machine.last_threads_used();
    now.windows = machine.total_windows();
    now.window_merges = machine.total_window_merges();
    now.steals = machine.total_shard_steals();
    now.spec_rollbacks = machine.total_speculation_rollbacks();
    now.spec_commits = machine.total_speculation_commits();
    now.spec_events = machine.total_speculated_events();
    now.spec_replayed = machine.total_replayed_events();
    now.ckpt_bytes = machine.total_checkpoint_bytes();
    std::vector<graph::Dist> dist =
        remap != nullptr ? remap->unmap_distances(run.sssp.dist)
                         : std::move(run.sssp.dist);
    now.dist_checksum = checksum_distances(dist);
    if (trial == 0) {
      const double wall_best = sample.wall_best_s;
      const double wall_mean = sample.wall_mean_s;
      sample = std::move(now);
      sample.wall_best_s = wall_best;
      sample.wall_mean_s = wall_mean;
      sample.dist = std::move(dist);
    } else {
      const auto diffs = diff_samples(sample, now, /*compare_events=*/true);
      if (!diffs.empty()) {
        die_divergence("nondeterminism! " + solver + " trial " +
                           std::to_string(trial) + " vs trial 0",
                       diffs);
      }
    }
  }
  return sample;
}

/// Per-locality-tier traffic, from one extra untimed serial run with an
/// observability registry attached (src/obs/ publishes net/* counters by
/// tier; Machine itself only tracks totals).  The registry-equivalence
/// tests pin these counts to the uninstrumented run's behaviour.
struct TierTraffic {
  std::uint64_t messages_self = 0;
  std::uint64_t messages_intra_process = 0;
  std::uint64_t messages_intra_node = 0;
  std::uint64_t messages_inter_node = 0;
  std::uint64_t bytes_self = 0;
  std::uint64_t bytes_intra_process = 0;
  std::uint64_t bytes_intra_node = 0;
  std::uint64_t bytes_inter_node = 0;
};

TierTraffic collect_tiers(const std::string& solver,
                          const stats::ExperimentSpec& spec,
                          const graph::Csr& csr,
                          const graph::Remap* remap) {
  runtime::Machine machine(spec.topology());
  obs::Registry registry(machine.topology());
  sssp::SolverOptions opts;
  opts.registry = &registry;
  const graph::VertexId source =
      remap != nullptr ? remap->map_vertex(spec.source) : spec.source;
  sssp::run_solver(solver, machine, csr, source, opts);
  TierTraffic t;
  t.messages_self = registry.total("net/messages_self");
  t.messages_intra_process = registry.total("net/messages_intra_process");
  t.messages_intra_node = registry.total("net/messages_intra_node");
  t.messages_inter_node = registry.total("net/messages_inter_node");
  t.bytes_self = registry.total("net/bytes_self");
  t.bytes_intra_process = registry.total("net/bytes_intra_process");
  t.bytes_intra_node = registry.total("net/bytes_intra_node");
  t.bytes_inter_node = registry.total("net/bytes_inter_node");
  return t;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Extracts the balanced-brace object following `"key":` in `text`; empty
/// string if absent.  Enough JSON for our own self-produced files.
std::string extract_object(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return {};
  std::size_t open = text.find('{', at + needle.size());
  if (open == std::string::npos) return {};
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '{') ++depth;
    if (text[i] == '}' && --depth == 0) {
      return text.substr(open, i - open + 1);
    }
  }
  return {};
}

///// Finds `"events_per_sec": <num>` inside the results entry for
/// (solver, scale, threads); falls back to the pre-threads entry format
/// (no "threads" field) so old baseline files stay checkable.  The
/// search starts at the last top-level `"results"` array so an embedded
/// `pre_pr` record (whose entries now carry the same fields) is never
/// matched.  With --reorder, identity entries are emitted first per
/// (solver, scale, threads), so the first match — and thus the
/// regression gate — always compares identity against identity.  0.0
/// if absent.
double find_events_per_sec(const std::string& text, const std::string& solver,
                           std::uint32_t scale, unsigned threads) {
  std::size_t from = text.rfind("\"results\": [");
  if (from == std::string::npos) from = 0;
  const std::string base_key =
      "\"solver\": \"" + solver + "\", \"scale\": " + std::to_string(scale);
  std::size_t at = text.find(
      base_key + ", \"threads\": " + std::to_string(threads), from);
  if (at == std::string::npos) at = text.find(base_key, from);
  if (at == std::string::npos) return 0.0;
  const std::string field = "\"events_per_sec\": ";
  const std::size_t f = text.find(field, at);
  if (f == std::string::npos) return 0.0;
  return std::strtod(text.c_str() + f + field.size(), nullptr);
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok =
        csv.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty()) out.push_back(tok);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts;
  opts.parse(argc, argv);

  std::vector<std::uint32_t> scales{16};
  if (opts.has("scales")) {
    scales = bench::parse_list(opts.get("scales", ""), "scales");
  } else if (opts.has("scale")) {
    scales = {static_cast<std::uint32_t>(opts.get_int("scale", 16))};
  }
  const auto trials =
      static_cast<std::uint32_t>(opts.get_int("trials", 3));
  const std::string solvers_csv =
      opts.get("solvers", "acic,delta_stepping_dist,kla");
  const std::string out_path = opts.get("out", "BENCH_wallclock.json");
  std::vector<unsigned> threads_list{1};
  if (opts.has("threads")) {
    threads_list =
        bench::parse_threads_list(opts.get("threads", ""), "threads");
  }
  // Window-policy arms for the multi-threaded runs.  1-thread runs use
  // the serial loop (no windows), so only one arm is emitted for them,
  // labeled "serial".
  std::vector<runtime::WindowMode> window_modes;
  for (const std::string& name :
       split_csv(opts.get("window-mode", "adaptive"))) {
    if (name == "fixed") {
      window_modes.push_back(runtime::WindowMode::kFixed);
    } else if (name == "adaptive") {
      window_modes.push_back(runtime::WindowMode::kAdaptive);
    } else {
      std::fprintf(stderr, "wallclock: unknown --window-mode '%s'\n",
                   name.c_str());
      return 2;
    }
  }
  if (window_modes.empty()) {
    window_modes.push_back(runtime::WindowMode::kAdaptive);
  }

  // Engine-discipline arms for the multi-threaded runs, mirroring the
  // window-mode plumbing.  The serial loop ignores the mode, so
  // 1-thread runs emit one arm.  Conservative always runs (first) when
  // optimistic is requested: it is the reference every optimistic arm's
  // simulated fields are diffed against, and it keeps the regression
  // gate comparing conservative against conservative.
  std::vector<runtime::EngineMode> engine_modes;
  for (const std::string& name :
       split_csv(opts.get("engine-mode", "conservative"))) {
    if (name == "conservative") {
      engine_modes.push_back(runtime::EngineMode::kConservative);
    } else if (name == "optimistic") {
      engine_modes.push_back(runtime::EngineMode::kOptimistic);
    } else {
      std::fprintf(stderr, "wallclock: unknown --engine-mode '%s'\n",
                   name.c_str());
      return 2;
    }
  }
  if (engine_modes.empty()) {
    engine_modes.push_back(runtime::EngineMode::kConservative);
  }
  if (std::find(engine_modes.begin(), engine_modes.end(),
                runtime::EngineMode::kConservative) == engine_modes.end()) {
    engine_modes.insert(engine_modes.begin(),
                        runtime::EngineMode::kConservative);
  }

  // Storage backends.  "mem" is the in-memory Csr the harness always
  // built; "mmap" re-runs identity-reorder configs on a MappedCsr view
  // of the on-disk file, prefetcher attached, diffing every simulated
  // field against the in-memory arm.
  std::vector<std::string> storage_modes =
      split_csv(opts.get("storage", "mem"));
  if (storage_modes.empty()) storage_modes.push_back("mem");
  bool want_mmap = false;
  for (const std::string& s : storage_modes) {
    if (s != "mem" && s != "mmap") {
      std::fprintf(stderr, "wallclock: unknown --storage '%s'\n", s.c_str());
      return 2;
    }
    want_mmap |= s == "mmap";
  }

  const std::vector<std::string> solvers = split_csv(solvers_csv);
  for (const std::string& solver : solvers) {
    if (!sssp::has_solver(solver)) {
      std::fprintf(stderr, "wallclock: unknown solver '%s'\n",
                   solver.c_str());
      return 2;
    }
  }

  // Reorder modes.  Identity always runs (first) when any other mode is
  // requested: it is both the gate's baseline and the distance-equality
  // reference every relabeled run is validated against.
  std::vector<graph::ReorderMode> reorder_modes;
  for (const std::string& name :
       split_csv(opts.get("reorder", "identity"))) {
    reorder_modes.push_back(graph::reorder_mode_from_string(name));
  }
  if (reorder_modes.empty()) {
    reorder_modes.push_back(graph::ReorderMode::kIdentity);
  }
  if (std::find(reorder_modes.begin(), reorder_modes.end(),
                graph::ReorderMode::kIdentity) == reorder_modes.end()) {
    reorder_modes.insert(reorder_modes.begin(),
                         graph::ReorderMode::kIdentity);
  }
  const bool multi_mode = reorder_modes.size() > 1;

  stats::ExperimentSpec base;
  base.graph = stats::graph_kind_from_string(opts.get("graph", "random"));
  base.edge_factor =
      static_cast<std::uint32_t>(opts.get_int("edge-factor", 16));
  base.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  base.nodes = static_cast<std::uint32_t>(opts.get_int("nodes", 2));

  const std::string previous = slurp(out_path);
  const std::string pre_pr = extract_object(previous, "pre_pr");
  // The out-of-core scale-24 record is produced by bench/ooc_smoke
  // (separate processes; see docs/out-of-core.md) and spliced into this
  // file; carry it forward like pre_pr so sweep reruns keep it.
  const std::string ooc_record = extract_object(previous, "ooc_scale24");

  std::string results;
  std::string cost_gate;
  std::printf("wallclock: trials=%u nodes=%u solvers=%s host_cores=%u\n",
              trials, base.nodes, solvers_csv.c_str(),
              std::thread::hardware_concurrency());
  for (const std::uint32_t scale : scales) {
    stats::ExperimentSpec spec = base;
    spec.scale = scale;
    // Build once per scale with the largest requested thread count: the
    // chunked generators produce the identical graph at any value.
    spec.threads = threads_list.back();
    const graph::Csr csr = stats::build_graph(spec);
    std::printf("scale %u: |V|=%u |E|=%llu\n", scale, csr.num_vertices(),
                static_cast<unsigned long long>(csr.num_edges()));

    // mmap arm: write the on-disk CSR once per scale (outside every
    // timed region) and map it for the sweep below.
    std::string csr_file_path;
    std::unique_ptr<graph::MappedCsr> mapped;
    if (want_mmap) {
      csr_file_path = out_path + ".scale" + std::to_string(scale) + ".oocsr";
      if (!graph::write_csr_file(csr, csr_file_path)) {
        std::fprintf(stderr, "wallclock: cannot write %s\n",
                     csr_file_path.c_str());
        return 2;
      }
      mapped = std::make_unique<graph::MappedCsr>(csr_file_path);
    }

    // Relabeled copies, built once per scale outside every timed region
    // so reordered wall numbers measure the solver, not the relabel.
    std::vector<std::unique_ptr<graph::Remap>> remaps(reorder_modes.size());
    for (std::size_t m = 0; m < reorder_modes.size(); ++m) {
      if (reorder_modes[m] != graph::ReorderMode::kIdentity) {
        remaps[m] = std::make_unique<graph::Remap>(
            csr, reorder_modes[m], threads_list.back());
      }
    }

    // COST baseline (per reorder mode, since relabeling changes the
    // sequential solver's cache behaviour too): the tuned single-thread
    // `sequential` solver on the same graph.  Every config below reports
    // its speedup against this number.
    std::vector<double> seq_wall(reorder_modes.size(), 0.0);
    std::vector<graph::Dist> seq_identity_dist;
    for (std::size_t m = 0; m < reorder_modes.size(); ++m) {
      const Sample s =
          run_one("sequential", spec, remaps[m] ? remaps[m]->csr() : csr,
                  remaps[m].get(), trials, 1,
                  runtime::WindowMode::kAdaptive);
      seq_wall[m] = s.wall_best_s;
      if (reorder_modes[m] == graph::ReorderMode::kIdentity) {
        seq_identity_dist = s.dist;
      } else if (s.dist != seq_identity_dist) {
        std::fprintf(stderr,
                     "wallclock: sequential baseline diverged under "
                     "reorder=%s\n",
                     graph::reorder_mode_name(reorder_modes[m]));
        return 4;
      }
      std::printf("  %-20s %s t=1  wall=%.3fs (COST baseline)\n",
                  "sequential", multi_mode
                      ? graph::reorder_mode_name(reorder_modes[m]) : "",
                  seq_wall[m]);
    }
    // First config in emission order that beats one core, per scale.
    std::string first_beats;
    double first_beats_speedup = 0.0;

    for (const std::string& solver : solvers) {
      std::vector<graph::Dist> identity_dist;
      for (std::size_t m = 0; m < reorder_modes.size(); ++m) {
        const graph::ReorderMode mode = reorder_modes[m];
        const char* mode_name = graph::reorder_mode_name(mode);
        const graph::Remap* remap = remaps[m].get();
        const graph::Csr& run_csr =
            remap != nullptr ? remap->csr() : csr;

        const TierTraffic tiers =
            collect_tiers(solver, spec, run_csr, remap);

        Sample reference;
        bool have_reference = false;
        for (const std::string& storage : storage_modes) {
        const bool is_mmap = storage == "mmap";
        // Relabeled graphs are freshly built in-memory copies by
        // construction; the mmap arm only covers identity ordering.
        if (is_mmap && mode != graph::ReorderMode::kIdentity) continue;
        const graph::Csr& sweep_csr = is_mmap ? mapped->csr() : run_csr;
        // Hint-only readahead for the mmap arm: its presence cannot
        // change any field diffed below.
        std::unique_ptr<graph::ooc::FrontierFeed> feed;
        std::unique_ptr<graph::ooc::PagePrefetcher> prefetcher;
        if (is_mmap) {
          feed = std::make_unique<graph::ooc::FrontierFeed>();
          prefetcher =
              std::make_unique<graph::ooc::PagePrefetcher>(*mapped, *feed);
        }
        const char* storage_tag =
            storage_modes.size() > 1 ? (is_mmap ? "mmap " : "mem  ") : "";
        double wall_1thread = -1.0;
        for (const unsigned threads : threads_list) {
         for (const runtime::WindowMode wmode : window_modes) {
          // The serial loop ignores the window policy: emit one arm.
          if (threads == 1 && wmode != window_modes.front()) continue;
          const char* wmode_name =
              threads == 1 ? "serial"
              : wmode == runtime::WindowMode::kFixed ? "fixed"
                                                     : "adaptive";
         for (const runtime::EngineMode emode : engine_modes) {
          // ... and likewise the engine discipline.
          if (threads == 1 && emode != engine_modes.front()) continue;
          const bool optimistic =
              threads > 1 && emode == runtime::EngineMode::kOptimistic;
          const char* emode_name = threads == 1 ? "serial"
                                   : optimistic ? "optimistic"
                                                : "conservative";
          Sample s = run_one(solver, spec, sweep_csr, remap, trials,
                             threads, wmode, emode, feed.get());
          if (!have_reference) {
            reference = std::move(s);
            have_reference = true;
            // Validate the reorder half: distances mapped back to
            // original labels must match the identity run exactly.
            if (mode == graph::ReorderMode::kIdentity) {
              identity_dist = reference.dist;
            } else {
              for (std::size_t v = 0; v < identity_dist.size(); ++v) {
                if (reference.dist[v] != identity_dist[v]) {
                  std::fprintf(
                      stderr,
                      "wallclock: %s reorder=%s: distance diverged at "
                      "vertex %zu (%.17g vs identity %.17g)\n",
                      solver.c_str(), mode_name, v, reference.dist[v],
                      identity_dist[v]);
                  std::exit(4);
                }
              }
            }
          } else {
            const auto diffs =
                diff_samples(s, reference, /*compare_events=*/false);
            if (!diffs.empty()) {
              die_divergence(solver + " reorder=" + mode_name +
                                 " storage=" + storage + " at " +
                                 std::to_string(threads) + " threads (" +
                                 wmode_name + ", " + emode_name +
                                 ") vs first thread count/window mode/"
                                 "engine mode",
                             diffs);
            }
            // The mmap arm additionally pins elementwise distance
            // equality (the checksum already implies it bit-for-bit;
            // this makes the acceptance property explicit and names the
            // first diverging vertex if it ever fails).
            if (is_mmap && s.dist != reference.dist) {
              std::fprintf(stderr,
                           "wallclock: %s storage=mmap: distances "
                           "diverged from in-memory run\n",
                           solver.c_str());
              std::exit(4);
            }
            reference.wall_best_s = s.wall_best_s;
            reference.wall_mean_s = s.wall_mean_s;
            reference.threads_used = s.threads_used;
            reference.windows = s.windows;
            reference.window_merges = s.window_merges;
            reference.steals = s.steals;
            reference.spec_rollbacks = s.spec_rollbacks;
            reference.spec_commits = s.spec_commits;
            reference.spec_events = s.spec_events;
            reference.spec_replayed = s.spec_replayed;
            reference.ckpt_bytes = s.ckpt_bytes;
          }
          const Sample& cur = reference;
          if (threads == 1) wall_1thread = cur.wall_best_s;
          // Speedup is only meaningful when the sweep includes a
          // 1-thread reference (e.g. the scale-22 CI step runs
          // --threads 4 alone).
          char speedup_text[32];
          char speedup_json[32];
          if (wall_1thread > 0.0) {
            const double speedup = wall_1thread / cur.wall_best_s;
            std::snprintf(speedup_text, sizeof(speedup_text), "%.2f",
                          speedup);
            std::snprintf(speedup_json, sizeof(speedup_json), "%.3f",
                          speedup);
          } else {
            std::snprintf(speedup_text, sizeof(speedup_text), "n/a");
            std::snprintf(speedup_json, sizeof(speedup_json), "null");
          }
          // The COST column: wall time against the tuned single-thread
          // sequential solver on the same (relabeled) graph.
          const double vs_seq = seq_wall[m] / cur.wall_best_s;
          if (first_beats.empty() && solver != "sequential" && !is_mmap &&
              vs_seq > 1.0) {
            // Optimistic arms compete in emission order like every other
            // config, so the verdict can legitimately name one.
            first_beats = solver + " t=" + std::to_string(threads) + " " +
                          wmode_name +
                          (threads == 1 ? std::string()
                                        : " " + std::string(emode_name)) +
                          " reorder=" + mode_name;
            first_beats_speedup = vs_seq;
          }
          const double events_per_sec =
              static_cast<double>(cur.events) / cur.wall_best_s;
          const double tasks_per_sec =
              static_cast<double>(cur.tasks) / cur.wall_best_s;
          // Rollback rate is over resolved speculative epochs; efficiency
          // is the fraction of speculated events that were kept (not
          // discarded by a rollback and re-executed conservatively).
          const std::uint64_t spec_resolved =
              cur.spec_rollbacks + cur.spec_commits;
          const double rollback_rate =
              spec_resolved > 0
                  ? static_cast<double>(cur.spec_rollbacks) /
                        static_cast<double>(spec_resolved)
                  : 0.0;
          const double spec_efficiency =
              cur.spec_events > 0
                  ? static_cast<double>(cur.spec_events - cur.spec_replayed) /
                        static_cast<double>(cur.spec_events)
                  : 0.0;
          char spec_text[96] = "";
          if (optimistic) {
            std::snprintf(spec_text, sizeof(spec_text),
                          "  rollbacks=%llu/%llu  spec_eff=%.2f",
                          static_cast<unsigned long long>(cur.spec_rollbacks),
                          static_cast<unsigned long long>(spec_resolved),
                          spec_efficiency);
          }
          std::printf(
              "  %-20s %s%s%s t=%u(eff %u) %-8s wall=%.3fs (best of %u)  "
              "%.3gM events/s  speedup=%s  vs_seq=%.2f  windows=%llu  "
              "sim=%.0fus  checksum=%016" PRIx64 "%s\n",
              solver.c_str(), multi_mode ? mode_name : "", storage_tag,
              engine_modes.size() > 1 ? (optimistic ? "opt  " : "cons ")
                                      : "",
              threads, cur.threads_used, wmode_name, cur.wall_best_s,
              trials, events_per_sec * 1e-6, speedup_text, vs_seq,
              static_cast<unsigned long long>(cur.windows),
              cur.sim_time_us, cur.dist_checksum, spec_text);
          std::fflush(stdout);

          const bench::ResourceUsage rss = bench::resource_usage();
          char entry[2560];
          std::snprintf(
              entry, sizeof(entry),
              "    {\"solver\": \"%s\", \"scale\": %u, \"threads\": %u, "
              "\"window_mode\": \"%s\", \"engine_mode\": \"%s\", "
              "\"threads_effective\": %u, "
              "\"reorder\": \"%s\", \"storage\": \"%s\", "
              "\"max_rss_bytes\": %llu, \"major_faults\": %llu, "
              "\"wall_seconds_best\": %.6f, \"wall_seconds_mean\": %.6f, "
              "\"events\": %llu, \"tasks\": %llu, \"messages\": %llu, "
              "\"bytes\": %llu, \"events_per_sec\": %.1f, "
              "\"tasks_per_sec\": %.1f, \"speedup_vs_1thread\": %s, "
              "\"speedup_vs_sequential\": %.3f, "
              "\"windows\": %llu, \"window_merges\": %llu, "
              "\"steals\": %llu, "
              "\"speculation_rollbacks\": %llu, "
              "\"speculation_commits\": %llu, "
              "\"speculated_events\": %llu, "
              "\"replayed_events\": %llu, "
              "\"checkpoint_bytes\": %llu, "
              "\"rollback_rate\": %.4f, "
              "\"speculation_efficiency\": %.4f, "
              "\"sim_time_us\": %.6f, "
              "\"updates_created\": %llu, \"cycles\": %llu, "
              "\"messages_inter_node\": %llu, "
              "\"bytes_inter_node\": %llu, "
              "\"messages_intra_node\": %llu, "
              "\"bytes_intra_node\": %llu, "
              "\"messages_intra_process\": %llu, "
              "\"bytes_intra_process\": %llu, "
              "\"dist_checksum\": \"%016" PRIx64 "\"}",
              solver.c_str(), scale, threads, wmode_name, emode_name,
              cur.threads_used, mode_name, storage.c_str(),
              static_cast<unsigned long long>(rss.max_rss_bytes),
              static_cast<unsigned long long>(rss.major_faults),
              cur.wall_best_s,
              cur.wall_mean_s, static_cast<unsigned long long>(cur.events),
              static_cast<unsigned long long>(cur.tasks),
              static_cast<unsigned long long>(cur.messages),
              static_cast<unsigned long long>(cur.bytes), events_per_sec,
              tasks_per_sec, speedup_json, vs_seq,
              static_cast<unsigned long long>(cur.windows),
              static_cast<unsigned long long>(cur.window_merges),
              static_cast<unsigned long long>(cur.steals),
              static_cast<unsigned long long>(cur.spec_rollbacks),
              static_cast<unsigned long long>(cur.spec_commits),
              static_cast<unsigned long long>(cur.spec_events),
              static_cast<unsigned long long>(cur.spec_replayed),
              static_cast<unsigned long long>(cur.ckpt_bytes),
              rollback_rate, spec_efficiency,
              cur.sim_time_us,
              static_cast<unsigned long long>(cur.updates_created),
              static_cast<unsigned long long>(cur.cycles),
              static_cast<unsigned long long>(tiers.messages_inter_node),
              static_cast<unsigned long long>(tiers.bytes_inter_node),
              static_cast<unsigned long long>(tiers.messages_intra_node),
              static_cast<unsigned long long>(tiers.bytes_intra_node),
              static_cast<unsigned long long>(tiers.messages_intra_process),
              static_cast<unsigned long long>(tiers.bytes_intra_process),
              cur.dist_checksum);
          if (!results.empty()) results += ",\n";
          results += entry;
         }  // engine modes
         }  // window modes
        }
        }  // storage arms
        if (multi_mode) {
          std::printf(
              "  %-20s %s tiers: inter-node %llu msgs / %.2f MB, "
              "intra-node %llu msgs, intra-process %llu msgs\n",
              solver.c_str(), mode_name,
              static_cast<unsigned long long>(tiers.messages_inter_node),
              static_cast<double>(tiers.bytes_inter_node) * 1e-6,
              static_cast<unsigned long long>(tiers.messages_intra_node),
              static_cast<unsigned long long>(tiers.messages_intra_process));
        }
      }
    }

    // Per-scale COST verdict: name the first configuration that beat
    // the tuned single-thread sequential solver — or admit none did.
    char gate[768];
    if (!first_beats.empty()) {
      std::printf("  COST gate: first config beating sequential: %s "
                  "(%.2fx)\n",
                  first_beats.c_str(), first_beats_speedup);
      std::snprintf(
          gate, sizeof(gate),
          "    {\"scale\": %u, \"sequential_wall_seconds\": %.6f, "
          "\"first_config_beating_sequential\": \"%s\", "
          "\"speedup\": %.3f}",
          scale, seq_wall[0], first_beats.c_str(), first_beats_speedup);
    } else {
      std::printf("  COST gate: no config beats the sequential solver "
                  "on this host (%u cores)\n",
                  std::thread::hardware_concurrency());
      std::snprintf(
          gate, sizeof(gate),
          "    {\"scale\": %u, \"sequential_wall_seconds\": %.6f, "
          "\"first_config_beating_sequential\": null}",
          scale, seq_wall[0]);
    }
    if (!cost_gate.empty()) cost_gate += ",\n";
    cost_gate += gate;

    if (mapped != nullptr) {
      mapped.reset();  // unmap before unlinking
      std::remove(csr_file_path.c_str());
    }
  }

  std::string json = "{\n  \"benchmark\": \"wallclock\",\n";
  json += "  \"trials\": " + std::to_string(trials) + ",\n";
  json += "  \"nodes\": " + std::to_string(base.nodes) + ",\n";
  json += "  \"edge_factor\": " + std::to_string(base.edge_factor) + ",\n";
  json += "  \"seed\": " + std::to_string(base.seed) + ",\n";
  json += "  \"host_cores\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  if (!pre_pr.empty()) json += "  \"pre_pr\": " + pre_pr + ",\n";
  if (!ooc_record.empty()) {
    json += "  \"ooc_scale24\": " + ooc_record + ",\n";
  }
  json += "  \"cost_gate\": [\n" + cost_gate + "\n  ],\n";
  json += "  \"results\": [\n" + results + "\n  ]\n}\n";

  // Regression gate: compare events/sec for --check-solver at the first
  // measured scale against a previously committed BENCH_wallclock.json.
  if (opts.has("check")) {
    const std::string baseline = slurp(opts.get("check", ""));
    if (baseline.empty()) {
      std::fprintf(stderr, "wallclock: cannot read baseline %s\n",
                   opts.get("check", "").c_str());
      return 2;
    }
    const std::string solver = opts.get("check-solver", "acic");
    const std::uint32_t scale = scales.front();
    const unsigned check_threads = threads_list.front();
    const double tolerance = opts.get_double("max-regress", 0.25);
    const double before =
        find_events_per_sec(baseline, solver, scale, check_threads);
    const double after =
        find_events_per_sec(json, solver, scale, check_threads);
    if (before > 0.0 && after < before * (1.0 - tolerance)) {
      std::fprintf(stderr,
                   "wallclock: %s events/sec regressed %.1f%% at scale %u "
                   "(%.0f -> %.0f, tolerance %.0f%%)\n",
                   solver.c_str(), 100.0 * (1.0 - after / before), scale,
                   before, after, tolerance * 100.0);
      return 3;
    }
    std::printf("regression check ok: %s %.0f -> %.0f events/sec\n",
                solver.c_str(), before, after);
  }

  std::ofstream out(out_path, std::ios::binary);
  out << json;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
