// Ablation: tramlib aggregation modes (paper §II.D).  The paper finds WP
// (per-worker buffer sets, per-destination-process buffers) best for
// SSSP; PP pays atomic contention on shared sets and WW's many buffers
// fill too slowly.

#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/util/rng.hpp"

int main(int argc, char** argv) {
  using namespace acic;
  const util::Options opts(argc, argv);
  const auto scale =
      static_cast<std::uint32_t>(opts.get_int("scale", 13));
  const auto nodes =
      static_cast<std::uint32_t>(opts.get_int("nodes", 4));
  const auto trials =
      static_cast<std::uint32_t>(opts.get_int("trials", 3));

  std::printf("Ablation: tramlib aggregation modes (scale=%u, %u "
              "mini-nodes, %u trials)  [paper: WP best]\n",
              scale, nodes, trials);

  util::Table table({"graph", "mode", "time_s", "aggregate_msgs_proxy"});
  for (const stats::GraphKind kind :
       {stats::GraphKind::kRandom, stats::GraphKind::kRmat}) {
    for (const tram::Aggregation mode :
         {tram::Aggregation::kWP, tram::Aggregation::kWW,
          tram::Aggregation::kPP, tram::Aggregation::kPW}) {
      double time_s = 0.0;
      double messages = 0.0;
      for (std::uint32_t trial = 0; trial < trials; ++trial) {
        stats::ExperimentSpec spec;
        spec.graph = kind;
        spec.scale = scale;
        spec.nodes = nodes;
        spec.seed = util::derive_seed(29, trial);
        stats::AlgoParams params;
        params.acic.tram.mode = mode;
        const auto outcome =
            stats::run_experiment(stats::Algo::kAcic, spec, params);
        time_s += outcome.sssp.metrics.sim_time_s();
        messages +=
            static_cast<double>(outcome.sssp.metrics.network_messages);
      }
      table.add_row({stats::graph_kind_name(kind),
                     tram::aggregation_name(mode),
                     util::strformat("%.5f", time_s / trials),
                     util::strformat("%.0f", messages / trials)});
    }
  }
  table.print();
  bench::write_csv(table, opts, "ablation_aggregation.csv");
  return 0;
}
