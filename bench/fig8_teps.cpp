// Figure 8: traversed edges per second (TEPS) of ACIC vs the RIKEN-style
// Δ-stepping baseline on random and RMAT graphs.
//
// Paper shape to reproduce: ACIC's TEPS is 25–63% higher on random
// graphs; Δ-stepping's TEPS is ~3.5–4x higher on RMAT (it brute-forces
// more relaxations per second, even though many are speculative).

#include <cstdio>

#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace acic;
  const util::Options opts(argc, argv);
  const stats::CompareSpec spec = bench::compare_spec_from_options(opts);

  std::printf("Figure 8: ACIC vs RIKEN delta-stepping TEPS\n");
  bench::print_spec(spec);

  const auto rows = stats::run_comparison(spec, bench::progress_line);

  util::Table table({"graph", "nodes", "acic_teps", "riken_teps",
                     "acic_over_riken"});
  for (const auto& row : rows) {
    const double ratio =
        row.riken_teps > 0.0 ? row.acic_teps / row.riken_teps : 0.0;
    table.add_row({stats::graph_kind_name(row.graph),
                   util::strformat("%u", row.nodes),
                   util::strformat("%.3g", row.acic_teps),
                   util::strformat("%.3g", row.riken_teps),
                   util::strformat("%.2fx", ratio)});
  }
  table.print();
  bench::write_csv(table, opts, "fig8_teps.csv");
  return 0;
}
