// Ablation: in-process work stealing (future work §V) on hub-heavy
// graphs.  ACIC's 1-D partition concentrates a hub vertex's expansion
// work on its owner PE; with the shared per-process work queue, idle
// sibling PEs pull edge chunks and relax them, attacking exactly the
// load imbalance the paper blames for ACIC's RMAT loss.

#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/util/rng.hpp"

int main(int argc, char** argv) {
  using namespace acic;
  const util::Options opts(argc, argv);
  const auto scale =
      static_cast<std::uint32_t>(opts.get_int("scale", 13));
  const auto nodes =
      static_cast<std::uint32_t>(opts.get_int("nodes", 4));
  const auto trials =
      static_cast<std::uint32_t>(opts.get_int("trials", 3));

  std::printf("Ablation: ACIC in-process work stealing (scale=%u, %u "
              "mini-nodes, %u trials)\n", scale, nodes, trials);

  struct Variant {
    const char* name;
    std::uint32_t steal;      // in-process shared-queue stealing
    std::uint32_t hub_split;  // global 1.5-D-style hub scattering
  };
  const Variant variants[] = {
      {"off", 0, 0},           {"steal>=16", 16, 0},
      {"steal>=64", 64, 0},    {"hub-split>=64", 0, 64},
      {"steal+split", 32, 256},
  };

  util::Table table({"graph", "variant", "time_s", "pe_imbalance"});
  for (const stats::GraphKind kind :
       {stats::GraphKind::kRmat, stats::GraphKind::kRandom}) {
    for (const Variant& variant : variants) {
      double time_s = 0.0;
      double imbalance = 0.0;
      for (std::uint32_t trial = 0; trial < trials; ++trial) {
        stats::ExperimentSpec spec;
        spec.graph = kind;
        spec.scale = scale;
        spec.nodes = nodes;
        spec.seed = util::derive_seed(43, trial);
        stats::AlgoParams params;
        params.acic.steal_threshold_degree = variant.steal;
        params.acic.hub_split_degree = variant.hub_split;
        const auto outcome =
            stats::run_experiment(stats::Algo::kAcic, spec, params);
        time_s += outcome.sssp.metrics.sim_time_s();
        imbalance += outcome.busy_imbalance;
      }
      table.add_row({stats::graph_kind_name(kind), variant.name,
                     util::strformat("%.5f", time_s / trials),
                     util::strformat("%.2f", imbalance / trials)});
    }
  }
  table.print();
  std::printf("expected: stealing and hub splitting lower pe_imbalance on "
              "rmat; runtime gains are bounded because the owner still "
              "pays every distance apply — the deeper fix is the 2-D/1.5-D "
              "*state* partition the paper proposes in §V\n");
  bench::write_csv(table, opts, "ablation_worksteal.csv");
  return 0;
}
